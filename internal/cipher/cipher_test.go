package cipher

import (
	"math"
	"testing"
	"testing/quick"

	"medsen/internal/drbg"
	"medsen/internal/electrode"
	"medsen/internal/sigproc"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	cases := []func(*Params){
		func(p *Params) { p.NumElectrodes = 0 },
		func(p *Params) { p.GainLevels = 1 },
		func(p *Params) { p.GainLevels = 300 },
		func(p *Params) { p.GainMin = 0 },
		func(p *Params) { p.GainMax = p.GainMin },
		func(p *Params) { p.SpeedLevels = 0 },
		func(p *Params) { p.SpeedMin = -1 },
		func(p *Params) { p.SpeedMax = p.SpeedMin },
		func(p *Params) { p.EpochS = 0 },
		func(p *Params) { p.MinActive = 0 },
		func(p *Params) { p.MinActive = p.NumElectrodes + 1 },
		func(p *Params) { p.AvoidAdjacent = true; p.MinActive = p.NumElectrodes },
	}
	for i, mutate := range cases {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, p)
		}
	}
}

func TestBitsResolution(t *testing.T) {
	p := DefaultParams() // 16 levels → 4 bits, the paper's choice
	if got := p.GainBits(); got != 4 {
		t.Fatalf("GainBits = %d, want 4", got)
	}
	if got := p.SpeedBits(); got != 4 {
		t.Fatalf("SpeedBits = %d, want 4", got)
	}
	p.GainLevels = 2
	if got := p.GainBits(); got != 1 {
		t.Fatalf("GainBits(2 levels) = %d, want 1", got)
	}
	p.GainLevels = 17
	if got := p.GainBits(); got != 5 {
		t.Fatalf("GainBits(17 levels) = %d, want 5", got)
	}
}

func TestIdealKeyLengthMatchesPaperExample(t *testing.T) {
	// §VI-B: 20K cells, 16 output electrodes, 16 gains (4 bits), 16 flow
	// speeds (4 bits) → 20K × (16 + 8×4 + 4) = 1.04 Mbit ≈ 0.12 MB.
	bits := IdealKeyLengthBits(20000, 16, 4, 4)
	if bits != 20000*52 {
		t.Fatalf("key length = %d bits, want %d", bits, 20000*52)
	}
	mb := float64(bits) / 8 / 1e6
	if mb < 0.11 || mb > 0.14 {
		t.Fatalf("key size %.3f MB, paper reports 0.12 MB", mb)
	}
}

func TestGainAndSpeedQuantization(t *testing.T) {
	p := DefaultParams()
	if got := p.GainAt(0); got != p.GainMin {
		t.Fatalf("GainAt(0) = %v, want %v", got, p.GainMin)
	}
	if got := p.GainAt(uint8(p.GainLevels - 1)); math.Abs(got-p.GainMax) > 1e-12 {
		t.Fatalf("GainAt(max) = %v, want %v", got, p.GainMax)
	}
	if got := p.SpeedAt(0); got != p.SpeedMin {
		t.Fatalf("SpeedAt(0) = %v, want %v", got, p.SpeedMin)
	}
	if got := p.SpeedAt(uint8(p.SpeedLevels - 1)); math.Abs(got-p.SpeedMax) > 1e-12 {
		t.Fatalf("SpeedAt(max) = %v, want %v", got, p.SpeedMax)
	}
	// Monotone in level.
	prev := -1.0
	for l := 0; l < p.GainLevels; l++ {
		g := p.GainAt(uint8(l))
		if g <= prev {
			t.Fatalf("gain not monotone at level %d", l)
		}
		prev = g
	}
}

func TestGenerateScheduleShape(t *testing.T) {
	p := DefaultParams()
	s, err := Generate(p, 10.5, drbg.NewFromSeed(1))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(s.Epochs) != 11 { // ceil(10.5 / 1.0)
		t.Fatalf("epochs = %d, want 11", len(s.Epochs))
	}
	for i, e := range s.Epochs {
		if len(e.Active) != p.NumElectrodes || len(e.GainLevel) != p.NumElectrodes {
			t.Fatalf("epoch %d sized wrong: %+v", i, e)
		}
		if e.NumActive() < p.MinActive {
			t.Fatalf("epoch %d has %d active, want >= %d", i, e.NumActive(), p.MinActive)
		}
		if int(e.SpeedLevel) >= p.SpeedLevels {
			t.Fatalf("epoch %d speed level %d out of range", i, e.SpeedLevel)
		}
		for _, g := range e.GainLevel {
			if int(g) >= p.GainLevels {
				t.Fatalf("epoch %d gain level %d out of range", i, g)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := DefaultParams()
	a, err := Generate(p, 5, drbg.NewFromSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, 5, drbg.NewFromSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Epochs {
		for j := range a.Epochs[i].Active {
			if a.Epochs[i].Active[j] != b.Epochs[i].Active[j] {
				t.Fatal("schedules with equal seeds must match")
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	p := DefaultParams()
	if _, err := Generate(p, 0, drbg.NewFromSeed(1)); err == nil {
		t.Error("expected duration error")
	}
	if _, err := Generate(p, 5, nil); err == nil {
		t.Error("expected nil-rng error")
	}
	p.NumElectrodes = 0
	if _, err := Generate(p, 5, drbg.NewFromSeed(1)); err == nil {
		t.Error("expected params error")
	}
}

func TestAvoidAdjacentProperty(t *testing.T) {
	p := DefaultParams()
	p.AvoidAdjacent = true
	s, err := Generate(p, 200, drbg.NewFromSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range s.Epochs {
		for j := 1; j < len(e.Active); j++ {
			if e.Active[j] && e.Active[j-1] {
				t.Fatalf("epoch %d activates adjacent electrodes %d,%d", i, j-1, j)
			}
		}
	}
}

func TestEpochIndexClamps(t *testing.T) {
	s, err := Generate(DefaultParams(), 5, drbg.NewFromSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.EpochIndexAt(-1); got != 0 {
		t.Fatalf("EpochIndexAt(-1) = %d", got)
	}
	if got := s.EpochIndexAt(2.5); got != 2 {
		t.Fatalf("EpochIndexAt(2.5) = %d", got)
	}
	if got := s.EpochIndexAt(999); got != 4 {
		t.Fatalf("EpochIndexAt(999) = %d", got)
	}
	empty := &Schedule{Params: DefaultParams()}
	if got := empty.EpochIndexAt(0); got != -1 {
		t.Fatalf("empty schedule EpochIndexAt = %d, want -1", got)
	}
}

func TestScheduleBits(t *testing.T) {
	p := DefaultParams() // 16 electrodes, 4-bit gains, 4-bit speed
	s, err := Generate(p, 10, drbg.NewFromSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	perEpoch := 16 + 16*4 + 4
	if got := s.ScheduleBits(); got != perEpoch*10 {
		t.Fatalf("ScheduleBits = %d, want %d", got, perEpoch*10)
	}
}

func TestGainsAndSpeedMaterialization(t *testing.T) {
	p := DefaultParams()
	s, err := Generate(p, 3, drbg.NewFromSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	gains := s.GainsAt(1.5)
	if len(gains) != p.NumElectrodes {
		t.Fatalf("gains length %d", len(gains))
	}
	for _, g := range gains {
		if g < p.GainMin || g > p.GainMax {
			t.Fatalf("gain %v out of [%v, %v]", g, p.GainMin, p.GainMax)
		}
	}
	sp := s.SpeedAt(1.5)
	if sp < p.SpeedMin || sp > p.SpeedMax {
		t.Fatalf("speed %v out of range", sp)
	}
}

// buildPeaksForParticle synthesizes the analyst-visible peaks one particle
// generates under a given epoch key, mirroring the sensor geometry.
func buildPeaksForParticle(
	t *testing.T,
	arr electrode.Array,
	p Params,
	key EpochKey,
	entryS, trueAmp, trueWidth float64,
) []sigproc.Peak {
	t.Helper()
	speed := p.SpeedAt(key.SpeedLevel)
	v := 2200.0 * speed
	var peaks []sigproc.Peak
	for i := 0; i < arr.NumOutputs && i < len(key.Active); i++ {
		if !key.Active[i] {
			continue
		}
		center := float64(2*i+1) * arr.PitchUm
		offsets := []float64{center - arr.PitchUm/2, center + arr.PitchUm/2}
		if i == 0 {
			offsets = offsets[1:]
		}
		gain := p.GainAt(key.GainLevel[i])
		for _, off := range offsets {
			peaks = append(peaks, sigproc.Peak{
				Time:      entryS + off/v,
				Amplitude: trueAmp * gain,
				Width:     trueWidth / speed,
			})
		}
	}
	return peaks
}

func testScheduleWithKeys(p Params, duration float64, keys []EpochKey) *Schedule {
	return &Schedule{Params: p, DurationS: duration, Epochs: keys}
}

func nineElectrodeParams() Params {
	p := DefaultParams()
	p.NumElectrodes = 9
	return p
}

func TestDecryptRecoversCountAmplitudeWidth(t *testing.T) {
	arr := electrode.MustArray(9)
	p := nineElectrodeParams()
	key := EpochKey{
		Active:     []bool{true, false, true, false, false, false, false, false, false},
		GainLevel:  []uint8{3, 0, 12, 0, 0, 0, 0, 0, 0},
		SpeedLevel: 5,
	}
	s := testScheduleWithKeys(p, 1.0, []EpochKey{key})

	const trueAmp, trueWidth = 0.006, 0.02
	var peaks []sigproc.Peak
	entries := []float64{0.10, 0.45, 0.80}
	for _, e := range entries {
		peaks = append(peaks, buildPeaksForParticle(t, arr, p, key, e, trueAmp, trueWidth)...)
	}

	dec, err := s.Decrypt(peaks, arr)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if dec.Count != len(entries) {
		t.Fatalf("decrypted count = %d, want %d", dec.Count, len(entries))
	}
	if len(dec.Particles) != len(entries) {
		t.Fatalf("resolved %d particles, want %d", len(dec.Particles), len(entries))
	}
	for i, est := range dec.Particles {
		if math.Abs(est.Amplitude-trueAmp) > 1e-9 {
			t.Fatalf("particle %d amplitude %v, want %v", i, est.Amplitude, trueAmp)
		}
		if math.Abs(est.WidthS-trueWidth) > 1e-9 {
			t.Fatalf("particle %d width %v, want %v", i, est.WidthS, trueWidth)
		}
	}
}

func TestDecryptAcrossEpochsWithDifferentFactors(t *testing.T) {
	arr := electrode.MustArray(9)
	p := nineElectrodeParams()
	keyA := EpochKey{ // lead only: factor 1
		Active:    []bool{true, false, false, false, false, false, false, false, false},
		GainLevel: make([]uint8, 9), SpeedLevel: 0,
	}
	keyB := EpochKey{ // three non-lead outputs: factor 6
		Active:    []bool{false, true, false, true, false, true, false, false, false},
		GainLevel: make([]uint8, 9), SpeedLevel: 15,
	}
	s := testScheduleWithKeys(p, 2.0, []EpochKey{keyA, keyB})

	var peaks []sigproc.Peak
	// Two particles in epoch A, one in epoch B.
	peaks = append(peaks, buildPeaksForParticle(t, arr, p, keyA, 0.2, 0.005, 0.02)...)
	peaks = append(peaks, buildPeaksForParticle(t, arr, p, keyA, 0.6, 0.005, 0.02)...)
	peaks = append(peaks, buildPeaksForParticle(t, arr, p, keyB, 1.4, 0.005, 0.02)...)

	dec, err := s.Decrypt(peaks, arr)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if dec.Count != 3 {
		t.Fatalf("count = %d, want 3", dec.Count)
	}
}

func TestDecryptEmptyPeaks(t *testing.T) {
	arr := electrode.MustArray(9)
	s, err := Generate(nineElectrodeParams(), 2, drbg.NewFromSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := s.Decrypt(nil, arr)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Count != 0 || len(dec.Particles) != 0 {
		t.Fatalf("expected empty decryption, got %+v", dec)
	}
}

func TestDecryptArrayLargerThanKeyedFails(t *testing.T) {
	p := DefaultParams()
	p.NumElectrodes = 3
	s, err := Generate(p, 1, drbg.NewFromSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Decrypt(nil, electrode.MustArray(9)); err == nil {
		t.Fatal("expected error when array outputs exceed keyed electrodes")
	}
}

func TestQuickDecryptCountRoundTrip(t *testing.T) {
	arr := electrode.MustArray(9)
	p := nineElectrodeParams()
	rng := drbg.NewFromSeed(77)
	f := func(nParticles uint8, seed uint16) bool {
		n := int(nParticles%6) + 1
		s, err := Generate(p, float64(n), drbg.NewFromSeed(uint64(seed)))
		if err != nil {
			return false
		}
		var peaks []sigproc.Peak
		for i := 0; i < n; i++ {
			// One particle per epoch, comfortably inside it.
			entry := float64(i) + 0.2 + 0.3*rng.Float64()
			key := s.KeyAt(entry)
			peaks = append(peaks, buildPeaksForParticle(t, arr, p, key, entry, 0.004, 0.02)...)
		}
		dec, err := s.Decrypt(peaks, arr)
		if err != nil {
			return false
		}
		return dec.Count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleZero(t *testing.T) {
	s, err := Generate(DefaultParams(), 5, drbg.NewFromSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	backing := s.Epochs // retain the backing array to verify wiping
	s.Zero()
	if len(s.Epochs) != 0 || s.DurationS != 0 {
		t.Fatalf("Zero left state: %+v", s)
	}
	for i := range backing[:cap(backing)] {
		e := backing[i]
		for _, on := range e.Active {
			if on {
				t.Fatal("active mask not wiped")
			}
		}
		for _, g := range e.GainLevel {
			if g != 0 {
				t.Fatal("gain levels not wiped")
			}
		}
		if e.SpeedLevel != 0 {
			t.Fatal("speed level not wiped")
		}
	}
}
