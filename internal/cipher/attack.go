package cipher

import (
	"math"
	"sort"

	"medsen/internal/sigproc"
)

// Attack simulations for the curious-but-honest analyst of §IV-A. Each
// attack is a concrete implementation of an inference strategy the paper
// discusses, used by the security evaluation and the ablation benches to
// show which cipher component (E, G or S randomization) defeats it.
//
// Every attack sees only what the cloud sees: the peak report (times,
// amplitudes, widths) of the ciphertext signal. None receives key material.

// AttackResult is an adversarial estimate of the hidden true particle count.
type AttackResult struct {
	// EstimatedCount is the attacker's best guess of the true count.
	EstimatedCount int
	// InferredFactor is the peak multiplication factor the attacker
	// believes was in effect (0 when the attack does not infer one).
	InferredFactor int
}

// RelativeError returns |estimate − truth| / truth (1 when truth is 0 and
// the estimate is not).
func (r AttackResult) RelativeError(trueCount int) float64 {
	if trueCount == 0 {
		if r.EstimatedCount == 0 {
			return 0
		}
		return 1
	}
	return math.Abs(float64(r.EstimatedCount-trueCount)) / float64(trueCount)
}

// EqualAmplitudeRunAttack implements the §IV-A "consecutive peaks of the
// exact same amplitude" strategy: a particle crossing k active gaps with
// *unit gains* produces a run of k near-identical amplitudes, so the run
// length reveals the multiplication factor. Random per-electrode gains
// destroy the runs and the attack collapses.
//
// tolerance is the relative amplitude difference within which the attacker
// considers two consecutive peaks "the same" (e.g. 0.05 for 5%).
func EqualAmplitudeRunAttack(peaks []sigproc.Peak, tolerance float64) AttackResult {
	if len(peaks) == 0 {
		return AttackResult{}
	}
	sorted := sortPeaksByTime(peaks)
	runLengths := runLengths(sorted, func(a, b sigproc.Peak) bool {
		return relDiff(a.Amplitude, b.Amplitude) <= tolerance
	})
	factor := modeInt(runLengths)
	if factor < 1 {
		factor = 1
	}
	return AttackResult{
		EstimatedCount: int(math.Round(float64(len(peaks)) / float64(factor))),
		InferredFactor: factor,
	}
}

// WidthClusterAttack implements the §IV-A width strategy: peaks caused by
// one particle share a transit width, so runs of equal width reveal the
// multiplication factor even when amplitudes are gain-scrambled. Randomized
// flow speed (the S component) changes widths across epochs and defeats it.
func WidthClusterAttack(peaks []sigproc.Peak, tolerance float64) AttackResult {
	if len(peaks) == 0 {
		return AttackResult{}
	}
	sorted := sortPeaksByTime(peaks)
	runLengths := runLengths(sorted, func(a, b sigproc.Peak) bool {
		return relDiff(a.Width, b.Width) <= tolerance
	})
	factor := modeInt(runLengths)
	if factor < 1 {
		factor = 1
	}
	return AttackResult{
		EstimatedCount: int(math.Round(float64(len(peaks)) / float64(factor))),
		InferredFactor: factor,
	}
}

// TemporalClusterAttack implements the §VII-A limitation the paper itself
// reports: because the inter-electrode spacing is small compared to the
// distance between successive particles, the peaks of one particle form a
// tight temporal group with long silences in between. Counting groups
// separated by more than gapS recovers the particle count at low
// concentrations regardless of gains; it degrades as concentration rises
// (groups merge) or when the analyst cannot bound the transit time.
func TemporalClusterAttack(peaks []sigproc.Peak, gapS float64) AttackResult {
	if len(peaks) == 0 {
		return AttackResult{}
	}
	sorted := sortPeaksByTime(peaks)
	clusters := 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Time-sorted[i-1].Time > gapS {
			clusters++
		}
	}
	return AttackResult{EstimatedCount: clusters}
}

// DivisorSweepAttack models a brute-force analyst who knows the sensor has
// n output electrodes and therefore that the multiplication factor lies in
// [1, 2n−1], but has no way to pick among candidates. It returns the full
// candidate set; the spread of the candidates is the attacker's residual
// uncertainty. The security evaluation uses CandidateSpread to show the true
// count is not identifiable from the ciphertext alone.
func DivisorSweepAttack(peakCount, numElectrodes int) []int {
	if peakCount <= 0 || numElectrodes < 1 {
		return nil
	}
	maxFactor := 2*numElectrodes - 1
	candidates := make([]int, 0, maxFactor)
	for f := 1; f <= maxFactor; f++ {
		candidates = append(candidates, int(math.Round(float64(peakCount)/float64(f))))
	}
	return candidates
}

// CandidateSpread returns the ratio of the largest to the smallest positive
// candidate count — the attacker's uncertainty band after a divisor sweep.
func CandidateSpread(candidates []int) float64 {
	minC, maxC := math.Inf(1), 0.0
	for _, c := range candidates {
		if c <= 0 {
			continue
		}
		f := float64(c)
		if f < minC {
			minC = f
		}
		if f > maxC {
			maxC = f
		}
	}
	if maxC == 0 || math.IsInf(minC, 1) {
		return 0
	}
	return maxC / minC
}

func sortPeaksByTime(peaks []sigproc.Peak) []sigproc.Peak {
	sorted := append([]sigproc.Peak(nil), peaks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
	return sorted
}

// runLengths returns the lengths of maximal runs of consecutive peaks that
// the predicate judges equal.
func runLengths(sorted []sigproc.Peak, same func(a, b sigproc.Peak) bool) []int {
	var lengths []int
	run := 1
	for i := 1; i < len(sorted); i++ {
		if same(sorted[i-1], sorted[i]) {
			run++
			continue
		}
		lengths = append(lengths, run)
		run = 1
	}
	lengths = append(lengths, run)
	return lengths
}

func relDiff(a, b float64) float64 {
	denom := math.Max(math.Abs(a), math.Abs(b))
	if denom == 0 {
		return 0
	}
	return math.Abs(a-b) / denom
}

func modeInt(xs []int) int {
	counts := make(map[int]int)
	best, bestN := 0, 0
	for _, x := range xs {
		counts[x]++
		if counts[x] > bestN || (counts[x] == bestN && x > best) {
			best, bestN = x, counts[x]
		}
	}
	return best
}
