package cipher

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"

	"medsen/internal/kdf"
)

// Key sharing with trusted parties (§VII-B): "MedSen's design also allows
// (not implemented) sharing of the generated keys with trusted parties,
// e.g., the patient's practitioners, so that they could also access the
// cloud-based analysis outcomes remotely." This file implements that
// extension: a schedule is sealed under a passphrase-derived AES-256-GCM
// key, producing a blob the patient can hand to their practitioner through
// any channel; the practitioner can then decrypt the cloud-stored analysis
// exactly as the controller does.

const (
	shareMagic   = "MSKS"
	shareVersion = 1
	saltLen      = 16
	nonceLen     = 12
)

// ErrBadShare reports a malformed or tampered key-share blob.
var ErrBadShare = errors.New("cipher: malformed key share")

// ErrWrongPassphrase reports an authentication failure opening a share —
// either the passphrase is wrong or the blob was modified.
var ErrWrongPassphrase = errors.New("cipher: wrong passphrase or corrupted share")

// ExportShared seals the schedule under the passphrase. The blob layout is
// magic ‖ version ‖ iterations ‖ salt ‖ nonce ‖ AES-256-GCM(schedule).
func (s *Schedule) ExportShared(passphrase string) ([]byte, error) {
	if passphrase == "" {
		return nil, errors.New("cipher: empty passphrase")
	}
	plain, err := s.MarshalBinary()
	if err != nil {
		return nil, err
	}
	salt := make([]byte, saltLen)
	if _, err := rand.Read(salt); err != nil {
		return nil, fmt.Errorf("cipher: reading salt entropy: %w", err)
	}
	nonce := make([]byte, nonceLen)
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("cipher: reading nonce entropy: %w", err)
	}
	aead, err := newShareAEAD(passphrase, salt, kdf.DefaultIterations)
	if err != nil {
		return nil, err
	}

	blob := make([]byte, 0, len(shareMagic)+1+4+saltLen+nonceLen+len(plain)+aead.Overhead())
	blob = append(blob, shareMagic...)
	blob = append(blob, shareVersion)
	var iterBuf [4]byte
	binary.BigEndian.PutUint32(iterBuf[:], uint32(kdf.DefaultIterations))
	blob = append(blob, iterBuf[:]...)
	blob = append(blob, salt...)
	blob = append(blob, nonce...)
	// The header is bound as associated data so it cannot be swapped.
	header := blob[:len(blob)-nonceLen-saltLen]
	blob = aead.Seal(blob, nonce, plain, header)
	return blob, nil
}

// ImportShared opens a blob produced by ExportShared.
func ImportShared(blob []byte, passphrase string) (*Schedule, error) {
	headerLen := len(shareMagic) + 1 + 4
	minLen := headerLen + saltLen + nonceLen
	if len(blob) < minLen {
		return nil, fmt.Errorf("%w: truncated", ErrBadShare)
	}
	if string(blob[:len(shareMagic)]) != shareMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadShare)
	}
	if blob[len(shareMagic)] != shareVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadShare, blob[len(shareMagic)])
	}
	iterations := int(binary.BigEndian.Uint32(blob[len(shareMagic)+1 : headerLen]))
	if iterations < 1 || iterations > 1<<26 {
		return nil, fmt.Errorf("%w: iteration count %d", ErrBadShare, iterations)
	}
	salt := blob[headerLen : headerLen+saltLen]
	nonce := blob[headerLen+saltLen : minLen]
	ciphertext := blob[minLen:]

	aead, err := newShareAEAD(passphrase, salt, iterations)
	if err != nil {
		return nil, err
	}
	plain, err := aead.Open(nil, nonce, ciphertext, blob[:headerLen])
	if err != nil {
		return nil, ErrWrongPassphrase
	}
	var sched Schedule
	if err := sched.UnmarshalBinary(plain); err != nil {
		return nil, err
	}
	return &sched, nil
}

func newShareAEAD(passphrase string, salt []byte, iterations int) (cipher.AEAD, error) {
	key := kdf.PBKDF2SHA256([]byte(passphrase), salt, iterations, 32)
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("cipher: building AES key: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("cipher: building GCM: %w", err)
	}
	return aead, nil
}
