// Package cipher implements MedSen's sensor-level analog signal encryption
// (§IV). The cipher is not a transformation applied to digitized data: it is
// a *configuration schedule* for the bio-sensor. Each key epoch selects
//
//	K(t) = (E(t), G(t), S(t))
//
// — the set of active output electrodes, the per-electrode output gains and
// the channel flow speed. Under a given epoch key, one particle produces
// PeaksPerParticle(E) voltage drops whose amplitudes are scaled by G and
// whose widths are stretched by 1/S, so an untrusted analyst can count and
// characterize peaks but cannot recover the true particle count, amplitude
// or width without the schedule.
//
// The package also implements the controller-side decryption of §IV-A: peak
// de-multiplication per epoch, per-peak gain removal, and width un-scaling,
// plus the key-length accounting of Eq. 2.
package cipher

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"medsen/internal/drbg"
	"medsen/internal/electrode"
	"medsen/internal/sigproc"
)

// Params fixes the cipher's quantization and scheduling choices (§VI-B).
type Params struct {
	// NumElectrodes is the number of independently keyable output
	// electrodes (16 in the Eq. 2 sizing example, 9 in the fabricated
	// device).
	NumElectrodes int
	// GainLevels is the number of quantized gain values (16 in the
	// paper, i.e. 4 bits of resolution).
	GainLevels int
	// GainMin and GainMax bound the randomized per-electrode gain. The
	// paper chooses the range so any peak can be masqueraded across the
	// ~4× amplitude spread between particle types.
	GainMin, GainMax float64
	// SpeedLevels is the number of quantized flow-speed values (16).
	SpeedLevels int
	// SpeedMin and SpeedMax bound the flow-speed factor relative to the
	// nominal pump rate.
	SpeedMin, SpeedMax float64
	// EpochS is the key renewal period in seconds: MedSen's practical
	// scheme changes (E, G, S) every epoch rather than per cell (§IV-A).
	EpochS float64
	// MinActive is the minimum number of active electrodes per epoch
	// (at least 1, or no signal reaches the analyst at all).
	MinActive int
	// NominalVelocityUmS is the calibrated particle velocity through the
	// sensing region at unit flow-speed factor (≈ 2200 µm/s for the
	// paper's 0.08 µL/min pump setting). The controller needs it to
	// group ciphertext peaks into per-particle windows during
	// decryption.
	NominalVelocityUmS float64
	// AvoidAdjacent, when set, rejects epoch keys that activate
	// consecutive electrodes — the §VII-A hardening against the flat
	// 17-peak train of Fig. 11d.
	AvoidAdjacent bool
}

// DefaultParams returns the paper's sizing: 16 electrodes, 16 gain levels,
// 16 speed levels, 1-second epochs.
func DefaultParams() Params {
	return Params{
		NumElectrodes:      16,
		GainLevels:         16,
		GainMin:            0.5,
		GainMax:            2.0,
		SpeedLevels:        16,
		SpeedMin:           0.6,
		SpeedMax:           1.4,
		EpochS:             1.0,
		MinActive:          1,
		NominalVelocityUmS: 2200,
	}
}

// ParamsForArray returns DefaultParams sized to key exactly the given number
// of output electrodes (the sensor requires the keyed width to match its
// array).
func ParamsForArray(numOutputs int) Params {
	p := DefaultParams()
	p.NumElectrodes = numOutputs
	return p
}

// Validate checks parameter consistency.
func (p Params) Validate() error {
	if p.NumElectrodes < 1 {
		return fmt.Errorf("cipher: NumElectrodes %d < 1", p.NumElectrodes)
	}
	if p.GainLevels < 2 {
		return fmt.Errorf("cipher: GainLevels %d < 2", p.GainLevels)
	}
	if p.GainLevels > 256 || p.SpeedLevels > 256 {
		return errors.New("cipher: gain/speed levels must fit one byte")
	}
	if !(p.GainMin > 0) || p.GainMax <= p.GainMin {
		return fmt.Errorf("cipher: invalid gain range [%v, %v]", p.GainMin, p.GainMax)
	}
	if p.SpeedLevels < 2 {
		return fmt.Errorf("cipher: SpeedLevels %d < 2", p.SpeedLevels)
	}
	if !(p.SpeedMin > 0) || p.SpeedMax <= p.SpeedMin {
		return fmt.Errorf("cipher: invalid speed range [%v, %v]", p.SpeedMin, p.SpeedMax)
	}
	if p.EpochS <= 0 {
		return fmt.Errorf("cipher: EpochS %v <= 0", p.EpochS)
	}
	if p.MinActive < 1 || p.MinActive > p.NumElectrodes {
		return fmt.Errorf("cipher: MinActive %d out of [1, %d]", p.MinActive, p.NumElectrodes)
	}
	if !(p.NominalVelocityUmS > 0) {
		return fmt.Errorf("cipher: NominalVelocityUmS %v must be positive", p.NominalVelocityUmS)
	}
	if p.AvoidAdjacent && p.MinActive > (p.NumElectrodes+1)/2 {
		return fmt.Errorf("cipher: MinActive %d impossible without adjacency on %d electrodes",
			p.MinActive, p.NumElectrodes)
	}
	return nil
}

// GainBits returns the bit resolution of the gain quantization (Rgain).
func (p Params) GainBits() int { return bitsFor(p.GainLevels) }

// SpeedBits returns the bit resolution of the flow-speed quantization (Rflow).
func (p Params) SpeedBits() int { return bitsFor(p.SpeedLevels) }

func bitsFor(levels int) int {
	bits := 0
	for v := levels - 1; v > 0; v >>= 1 {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	return bits
}

// GainAt materializes the gain value for a quantization level.
func (p Params) GainAt(level uint8) float64 {
	if p.GainLevels < 2 {
		return p.GainMin
	}
	return p.GainMin + float64(level)*(p.GainMax-p.GainMin)/float64(p.GainLevels-1)
}

// SpeedAt materializes the flow-speed factor for a quantization level.
func (p Params) SpeedAt(level uint8) float64 {
	if p.SpeedLevels < 2 {
		return p.SpeedMin
	}
	return p.SpeedMin + float64(level)*(p.SpeedMax-p.SpeedMin)/float64(p.SpeedLevels-1)
}

// IdealKeyLengthBits implements Eq. 2: the key length for the ideal
// per-cell keying scheme,
//
//	L = Ncells × (Nelec + Nelec/2 × Rgain + Rflow).
//
// The paper's example — 20 000 cells, 16 electrodes, 4-bit gains, 4-bit
// speeds — yields 1 048 000 bits ≈ 0.12 MB.
func IdealKeyLengthBits(nCells, nElectrodes, gainBits, flowBits int) int {
	return nCells * (nElectrodes + nElectrodes/2*gainBits + flowBits)
}

// EpochKey is the key material for one epoch, stored in quantized form so
// serialization is exact.
type EpochKey struct {
	// Active is the electrode on/off vector E(t).
	Active []bool
	// GainLevel holds the quantized per-electrode gain levels G(t).
	GainLevel []uint8
	// SpeedLevel is the quantized flow-speed level S(t).
	SpeedLevel uint8
}

// Schedule is a complete key schedule for one acquisition. It is the secret
// that never leaves the controller (§VI-B).
type Schedule struct {
	Params Params
	// DurationS is the acquisition window the schedule covers.
	DurationS float64
	Epochs    []EpochKey
}

// Generate draws a fresh key schedule covering durationS seconds from the
// controller's entropy source.
func Generate(p Params, durationS float64, rng *drbg.DRBG) (*Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if durationS <= 0 {
		return nil, fmt.Errorf("cipher: non-positive duration %v", durationS)
	}
	if rng == nil {
		return nil, errors.New("cipher: nil rng")
	}
	nEpochs := int(math.Ceil(durationS / p.EpochS))
	s := &Schedule{Params: p, DurationS: durationS, Epochs: make([]EpochKey, nEpochs)}
	for i := range s.Epochs {
		s.Epochs[i] = generateEpoch(p, rng)
	}
	return s, nil
}

func generateEpoch(p Params, rng *drbg.DRBG) EpochKey {
	k := EpochKey{
		Active:     make([]bool, p.NumElectrodes),
		GainLevel:  make([]uint8, p.NumElectrodes),
		SpeedLevel: uint8(rng.Intn(p.SpeedLevels)),
	}
	for {
		nActive := 0
		prev := false
		valid := true
		for i := range k.Active {
			on := rng.Bool()
			if p.AvoidAdjacent && on && prev {
				on = false
			}
			k.Active[i] = on
			if on {
				nActive++
			}
			prev = on
		}
		if nActive < p.MinActive {
			valid = false
		}
		if valid {
			break
		}
	}
	for i := range k.GainLevel {
		k.GainLevel[i] = uint8(rng.Intn(p.GainLevels))
	}
	return k
}

// NumActive returns the number of active electrodes in the epoch key.
func (k EpochKey) NumActive() int {
	n := 0
	for _, on := range k.Active {
		if on {
			n++
		}
	}
	return n
}

// EpochIndexAt returns the epoch index covering time t (clamped into range).
func (s *Schedule) EpochIndexAt(tS float64) int {
	if len(s.Epochs) == 0 {
		return -1
	}
	idx := int(tS / s.Params.EpochS)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.Epochs) {
		idx = len(s.Epochs) - 1
	}
	return idx
}

// KeyAt returns the epoch key covering time t.
func (s *Schedule) KeyAt(tS float64) EpochKey {
	return s.Epochs[s.EpochIndexAt(tS)]
}

// GainsAt materializes the per-electrode gain vector at time t.
func (s *Schedule) GainsAt(tS float64) []float64 {
	k := s.KeyAt(tS)
	gains := make([]float64, len(k.GainLevel))
	for i, lv := range k.GainLevel {
		gains[i] = s.Params.GainAt(lv)
	}
	return gains
}

// SpeedAt materializes the flow-speed factor at time t.
func (s *Schedule) SpeedAt(tS float64) float64 {
	return s.Params.SpeedAt(s.KeyAt(tS).SpeedLevel)
}

// ScheduleBits returns the size of this practical epoch-keyed schedule in
// bits: per epoch, the electrode mask plus one gain level per electrode plus
// the speed level.
func (s *Schedule) ScheduleBits() int {
	perEpoch := s.Params.NumElectrodes +
		s.Params.NumElectrodes*s.Params.GainBits() +
		s.Params.SpeedBits()
	return perEpoch * len(s.Epochs)
}

// ParticleEstimate is one decrypted particle observation: the controller's
// reconstruction of the true measurement the sensor would have produced with
// a single unit-gain electrode at nominal flow.
type ParticleEstimate struct {
	// TimeS is the particle's passage time.
	TimeS float64
	// Amplitude is the recovered true fractional impedance drop.
	Amplitude float64
	// WidthS is the recovered true transit width at nominal flow speed.
	WidthS float64
}

// Decrypted is the controller-side decryption result.
type Decrypted struct {
	// Count is the recovered true particle count.
	Count int
	// Particles holds per-particle estimates for peak groups that could
	// be unambiguously resolved (used for bead classification and the
	// ciphertext integrity check). May be shorter than Count under heavy
	// coincidence.
	Particles []ParticleEstimate
}

// Decrypt recovers the true particle count and per-particle features from
// the analyst's peak report (§IV-A: "The decryption requires light
// computation (multiplications and divisions)").
//
// The count recovery exploits that the sensor keys each *gap crossing* by
// the key in force at the crossing time (the multiplexer switches in real
// time): every ciphertext peak observed at time t under a key with
// multiplication factor m(t) represents exactly 1/m(t) of one particle, so
// the true count is Σ 1/m(tᵢ) over all peaks — simple divisions, as §IV-A
// promises. Peaks falling in epochs where no electrode of the array was
// listening are noise and are discarded.
//
// For feature recovery, peaks are additionally grouped into per-particle
// windows (anchored at a group's first peak, spanning the active-crossing
// template at the epoch's flow speed with velocity-jitter margin). A window
// holding exactly the expected number of peaks is resolved into a
// ParticleEstimate by removing each peak's electrode gain (peaks arrive in
// electrode-geometry order) and un-stretching widths by the epoch flow
// speed.
func (s *Schedule) Decrypt(peaks []sigproc.Peak, arr electrode.Array) (Decrypted, error) {
	if arr.NumOutputs > s.Params.NumElectrodes {
		return Decrypted{}, fmt.Errorf("cipher: array has %d outputs but schedule keys %d electrodes",
			arr.NumOutputs, s.Params.NumElectrodes)
	}
	sorted := append([]sigproc.Peak(nil), peaks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })

	var out Decrypted
	countF := 0.0
	for _, p := range sorted {
		if factor := arr.PeaksPerParticle(s.KeyAt(p.Time).Active); factor > 0 {
			countF += 1 / float64(factor)
		}
	}
	out.Count = int(math.Round(countF))

	// Resolution pass: window-grouped feature recovery. The crossing set is
	// rebuilt for each group's epoch key into one recycled scratch slice
	// instead of a fresh allocation per group.
	var crossScratch []electrode.Crossing
	for i := 0; i < len(sorted); {
		key := s.KeyAt(sorted[i].Time)
		crossScratch = arr.AppendCrossings(crossScratch[:0], key.Active)
		crossings := crossScratch
		if len(crossings) == 0 {
			i++ // noise in a silent epoch
			continue
		}
		speed := s.Params.SpeedAt(key.SpeedLevel)
		v := s.Params.NominalVelocityUmS * speed
		// Window span: template length at the epoch speed, padded for
		// per-particle velocity spread and detection jitter.
		span := (crossings[len(crossings)-1].OffsetUm-crossings[0].OffsetUm)/v*1.4 + 0.03
		j := i
		for j < len(sorted) && sorted[j].Time-sorted[i].Time <= span {
			j++
		}
		if j-i == len(crossings) {
			est := ParticleEstimate{TimeS: sorted[i].Time}
			sumAmp, sumWidth := 0.0, 0.0
			for k, c := range crossings {
				gain := s.Params.GainAt(key.GainLevel[c.Electrode])
				sumAmp += sorted[i+k].Amplitude / gain
				sumWidth += sorted[i+k].Width * speed
			}
			est.Amplitude = sumAmp / float64(len(crossings))
			est.WidthS = sumWidth / float64(len(crossings))
			out.Particles = append(out.Particles, est)
		}
		i = j
	}
	return out, nil
}

// Zero wipes the schedule's key material in place (§VI-B hygiene: "The
// encryption keys always remain on the controller"; once an acquisition is
// decrypted and verified, the schedule should not outlive its use). The
// schedule is unusable afterwards.
func (s *Schedule) Zero() {
	for i := range s.Epochs {
		for j := range s.Epochs[i].Active {
			s.Epochs[i].Active[j] = false
		}
		for j := range s.Epochs[i].GainLevel {
			s.Epochs[i].GainLevel[j] = 0
		}
		s.Epochs[i].SpeedLevel = 0
	}
	s.Epochs = s.Epochs[:0]
	s.DurationS = 0
}
