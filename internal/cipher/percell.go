package cipher

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"medsen/internal/drbg"
	"medsen/internal/electrode"
	"medsen/internal/sigproc"
)

// The ideal per-cell scheme of §IV-A: "every signal peak is encrypted with
// its own randomly generated key … comparable to the perfectly secret
// one-time pad encryption scheme". Each successive particle consumes one
// fresh key K = (E, G, S) and the key length grows linearly with the cell
// count (Eq. 2). The paper rejects this scheme for deployment because the
// sensor "would require MedSen to be aware of every cell entering and
// leaving the channel" and coincident cells break the bookkeeping — both of
// which this implementation reproduces — but it is the security baseline
// the practical epoch scheme is judged against, so it is implemented here
// for the comparison experiments.

// PerCellSchedule holds one key per expected particle, consumed in arrival
// order.
type PerCellSchedule struct {
	Params Params
	// Keys[i] configures the sensor for the i-th particle. Particles
	// beyond the prepared count pass unobserved (no key, no electrodes).
	Keys []EpochKey
}

// GeneratePerCell draws keys for up to maxCells particles.
func GeneratePerCell(p Params, maxCells int, rng *drbg.DRBG) (*PerCellSchedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if maxCells < 1 {
		return nil, fmt.Errorf("cipher: per-cell schedule needs at least 1 key, got %d", maxCells)
	}
	if rng == nil {
		return nil, errors.New("cipher: nil rng")
	}
	s := &PerCellSchedule{Params: p, Keys: make([]EpochKey, maxCells)}
	for i := range s.Keys {
		s.Keys[i] = generateEpoch(p, rng)
	}
	return s, nil
}

// KeyBits returns the exact Eq. 2 key length of this schedule:
// cells × (electrodes + electrodes/2 × gainBits + speedBits).
func (s *PerCellSchedule) KeyBits() int {
	return IdealKeyLengthBits(len(s.Keys), s.Params.NumElectrodes, s.Params.GainBits(), s.Params.SpeedBits())
}

// KeyAtCell returns the key for the i-th particle and whether one exists.
func (s *PerCellSchedule) KeyAtCell(i int) (EpochKey, bool) {
	if i < 0 || i >= len(s.Keys) {
		return EpochKey{}, false
	}
	return s.Keys[i], true
}

// DecryptPerCell recovers the particle count from the analyst's peak report
// under per-cell keying. The controller walks the key sequence: key i
// predicts factor_i peaks for the i-th particle; peaks are consumed in time
// order. The count is the number of keys fully consumed (plus a fractional
// tail). This bookkeeping is exactly what §IV-A warns is fragile: it
// assumes particles arrive strictly in sequence with no coincidence — the
// simulation reproduces both the scheme and its failure mode.
func (s *PerCellSchedule) DecryptPerCell(peaks []sigproc.Peak, arr electrode.Array) (Decrypted, error) {
	if arr.NumOutputs > s.Params.NumElectrodes {
		return Decrypted{}, fmt.Errorf("cipher: array has %d outputs but schedule keys %d electrodes",
			arr.NumOutputs, s.Params.NumElectrodes)
	}
	sorted := append([]sigproc.Peak(nil), peaks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })

	var out Decrypted
	idx := 0
	for cell := 0; cell < len(s.Keys) && idx < len(sorted); cell++ {
		key := s.Keys[cell]
		crossings := arr.Crossings(key.Active)
		factor := len(crossings)
		if factor == 0 {
			continue
		}
		end := idx + factor
		if end > len(sorted) {
			// Partial tail: count the fraction.
			out.Count += int(math.Round(float64(len(sorted)-idx) / float64(factor)))
			idx = len(sorted)
			break
		}
		speed := s.Params.SpeedAt(key.SpeedLevel)
		est := ParticleEstimate{TimeS: sorted[idx].Time}
		sumAmp, sumWidth := 0.0, 0.0
		for k, c := range crossings {
			gain := s.Params.GainAt(key.GainLevel[c.Electrode])
			sumAmp += sorted[idx+k].Amplitude / gain
			sumWidth += sorted[idx+k].Width * speed
		}
		est.Amplitude = sumAmp / float64(factor)
		est.WidthS = sumWidth / float64(factor)
		out.Particles = append(out.Particles, est)
		out.Count++
		idx = end
	}
	return out, nil
}

// PerCellPosterior computes the analyst's posterior over the true count
// given a total ciphertext peak count under per-cell keying: the observed
// total is a sum of N independent factor draws, so P(peaks | N) is the
// N-fold convolution of the factor distribution. Computed exactly by
// dynamic programming over the Monte-Carlo factor distribution.
func PerCellPosterior(
	p Params,
	arr electrode.Array,
	observedPeaks int,
	maxCount int,
	rng *drbg.DRBG,
) (CountPosterior, error) {
	if err := p.Validate(); err != nil {
		return CountPosterior{}, err
	}
	if observedPeaks < 1 || maxCount < 1 {
		return CountPosterior{}, fmt.Errorf("cipher: bad posterior inputs peaks=%d max=%d",
			observedPeaks, maxCount)
	}
	if rng == nil {
		return CountPosterior{}, errors.New("cipher: nil rng")
	}
	const mcSamples = 20000
	factorDist := factorDistribution(p, arr, mcSamples, rng)

	// dp[s] = P(sum of factors so far = s); iterate N times.
	post := CountPosterior{ObservedPeaks: observedPeaks, Probs: make(map[int]float64)}
	dp := make([]float64, observedPeaks+1)
	dp[0] = 1
	total := 0.0
	for n := 1; n <= maxCount; n++ {
		next := make([]float64, observedPeaks+1)
		for s, ps := range dp {
			if ps == 0 {
				continue
			}
			for f, pf := range factorDist {
				if f <= 0 || s+f > observedPeaks {
					continue
				}
				next[s+f] += ps * pf
			}
		}
		dp = next
		if pr := dp[observedPeaks]; pr > 0 {
			post.Probs[n] = pr
			total += pr
		}
	}
	if total == 0 {
		return post, nil
	}
	for n := range post.Probs {
		post.Probs[n] /= total
	}
	return post, nil
}
