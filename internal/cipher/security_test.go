package cipher

import (
	"math"
	"testing"

	"medsen/internal/drbg"
	"medsen/internal/electrode"
)

func nineParams() Params {
	p := DefaultParams()
	p.NumElectrodes = 9
	p.MinActive = 2
	return p
}

func TestPosteriorSpansManyCounts(t *testing.T) {
	arr := electrode.MustArray(9)
	// 240 peaks factors as 240/f for many feasible f ∈ [3, 17].
	post, err := PosteriorOverCounts(nineParams(), arr, 240, 300, drbg.NewFromSeed(1))
	if err != nil {
		t.Fatalf("PosteriorOverCounts: %v", err)
	}
	if len(post.Probs) < 4 {
		t.Fatalf("posterior support %d counts, want several candidates", len(post.Probs))
	}
	if h := post.EntropyBits(); h < 1.5 {
		t.Fatalf("posterior entropy %.2f bits, want > 1.5 (analyst stays uncertain)", h)
	}
	// Probabilities sum to 1.
	sum := 0.0
	for _, pr := range post.Probs {
		sum += pr
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("posterior sums to %v", sum)
	}
}

func TestPosteriorMAPAndInterval(t *testing.T) {
	arr := electrode.MustArray(9)
	post, err := PosteriorOverCounts(nineParams(), arr, 240, 300, drbg.NewFromSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	mapCount, mapP := post.MAP()
	if mapCount < 1 || mapP <= 0 || mapP > 1 {
		t.Fatalf("MAP = %d @ %v", mapCount, mapP)
	}
	lo, hi := post.CredibleInterval(0.9)
	if lo > hi || lo < 1 {
		t.Fatalf("credible interval [%d, %d]", lo, hi)
	}
	// The 90% interval should be wide relative to its center — the true
	// count is not pinned down.
	if hi-lo == 0 {
		t.Fatal("credible interval collapsed to a point")
	}
}

func TestPosteriorPlaintextModeIsCertain(t *testing.T) {
	// With exactly one electrode always active (factor 1 with certainty)
	// the posterior must collapse: the analyst learns the count.
	p := nineParams()
	p.MinActive = 1
	arr := electrode.MustArray(1) // single-output device: factor always 1
	pp := p
	pp.NumElectrodes = 1
	post, err := PosteriorOverCounts(pp, arr, 42, 100, drbg.NewFromSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	mapCount, mapP := post.MAP()
	if mapCount != 42 || mapP < 0.999 {
		t.Fatalf("plaintext posterior should be certain: MAP %d @ %v", mapCount, mapP)
	}
	if h := post.EntropyBits(); h > 0.01 {
		t.Fatalf("plaintext entropy %v, want ~0", h)
	}
}

func TestPosteriorValidation(t *testing.T) {
	arr := electrode.MustArray(9)
	if _, err := PosteriorOverCounts(nineParams(), arr, 0, 100, drbg.NewFromSeed(1)); err == nil {
		t.Error("expected error for zero peaks")
	}
	if _, err := PosteriorOverCounts(nineParams(), arr, 10, 0, drbg.NewFromSeed(1)); err == nil {
		t.Error("expected error for zero max count")
	}
	if _, err := PosteriorOverCounts(nineParams(), arr, 10, 100, nil); err == nil {
		t.Error("expected error for nil rng")
	}
	if _, err := PosteriorOverCounts(Params{}, arr, 10, 100, drbg.NewFromSeed(1)); err == nil {
		t.Error("expected error for invalid params")
	}
}

func TestPosteriorEmptySupport(t *testing.T) {
	// A peak count no (count × feasible factor) can produce: prime above
	// max feasible factor with maxCount 1.
	arr := electrode.MustArray(9)
	post, err := PosteriorOverCounts(nineParams(), arr, 97, 1, drbg.NewFromSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(post.Probs) != 0 {
		t.Fatalf("expected empty posterior, got %v", post.Probs)
	}
	if lo, hi := post.CredibleInterval(0.9); lo != 0 || hi != 0 {
		t.Fatalf("empty interval = [%d,%d]", lo, hi)
	}
}
