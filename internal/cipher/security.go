package cipher

import (
	"fmt"
	"math"

	"medsen/internal/drbg"
	"medsen/internal/electrode"
)

// Information-theoretic security analysis of the peak-count channel. §IV-A
// argues the scheme is "comparable to the perfectly secret one-time pad";
// this file quantifies the claim for the practical epoch scheme: given the
// ciphertext peak count the analyst observes, how much uncertainty remains
// about the true particle count?

// CountPosterior is the analyst's Bayesian posterior over the true count
// after observing a ciphertext peak count, assuming the analyst knows the
// cipher parameters (Kerckhoffs) but not the key.
type CountPosterior struct {
	// Probs maps candidate true counts to posterior probability.
	Probs map[int]float64
	// ObservedPeaks is the conditioning observation.
	ObservedPeaks int
}

// EntropyBits returns the Shannon entropy of the posterior — the analyst's
// remaining uncertainty in bits.
func (p CountPosterior) EntropyBits() float64 {
	h := 0.0
	for _, pr := range p.Probs {
		if pr > 0 {
			h -= pr * math.Log2(pr)
		}
	}
	return h
}

// MAP returns the maximum-a-posteriori count and its probability.
func (p CountPosterior) MAP() (int, float64) {
	best, bestP := 0, -1.0
	for c, pr := range p.Probs {
		if pr > bestP || (pr == bestP && c < best) {
			best, bestP = c, pr
		}
	}
	return best, bestP
}

// CredibleInterval returns the smallest [lo, hi] count range holding at
// least the given posterior mass.
func (p CountPosterior) CredibleInterval(mass float64) (lo, hi int) {
	if len(p.Probs) == 0 {
		return 0, 0
	}
	minC, maxC := math.MaxInt, math.MinInt
	for c := range p.Probs {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	best := math.MaxInt
	for a := minC; a <= maxC; a++ {
		sum := 0.0
		for b := a; b <= maxC; b++ {
			sum += p.Probs[b]
			if sum >= mass {
				if b-a < best {
					best = b - a
					lo, hi = a, b
				}
				break
			}
		}
	}
	return lo, hi
}

// factorDistribution computes the distribution of the peak multiplication
// factor under the key-generation process by Monte-Carlo over epoch keys.
func factorDistribution(p Params, arr electrode.Array, samples int, rng *drbg.DRBG) map[int]float64 {
	counts := make(map[int]int)
	for i := 0; i < samples; i++ {
		k := generateEpoch(p, rng)
		counts[arr.PeaksPerParticle(k.Active)]++
	}
	dist := make(map[int]float64, len(counts))
	for f, n := range counts {
		dist[f] = float64(n) / float64(samples)
	}
	return dist
}

// FactorEntropyBits returns the Shannon entropy (bits) of the peak
// multiplication factor under the key-generation process — the per-particle
// confusion a design injects into the ciphertext.
func FactorEntropyBits(p Params, arr electrode.Array, rng *drbg.DRBG) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if rng == nil {
		return 0, fmt.Errorf("cipher: nil rng")
	}
	const mcSamples = 20000
	dist := factorDistribution(p, arr, mcSamples, rng)
	h := 0.0
	for _, pr := range dist {
		if pr > 0 {
			h -= pr * math.Log2(pr)
		}
	}
	return h, nil
}

// PosteriorOverCounts computes the analyst's posterior over the true
// particle count given an observed ciphertext peak count, for a
// single-epoch observation window.
//
// Model: the true count N is uniform over [1, maxCount] (the analyst's
// prior); all N particles cross under one epoch key with multiplication
// factor F drawn from the key distribution; the observation is peaks =
// N × F. The posterior is P(N | peaks) ∝ Σ_F P(F)·[N·F = peaks].
func PosteriorOverCounts(
	p Params,
	arr electrode.Array,
	observedPeaks int,
	maxCount int,
	rng *drbg.DRBG,
) (CountPosterior, error) {
	if err := p.Validate(); err != nil {
		return CountPosterior{}, err
	}
	if observedPeaks < 1 || maxCount < 1 {
		return CountPosterior{}, fmt.Errorf("cipher: bad posterior inputs peaks=%d max=%d",
			observedPeaks, maxCount)
	}
	if rng == nil {
		return CountPosterior{}, fmt.Errorf("cipher: nil rng")
	}
	const mcSamples = 20000
	factorDist := factorDistribution(p, arr, mcSamples, rng)

	post := CountPosterior{ObservedPeaks: observedPeaks, Probs: make(map[int]float64)}
	total := 0.0
	for n := 1; n <= maxCount; n++ {
		if observedPeaks%n != 0 {
			continue
		}
		f := observedPeaks / n
		if pr, ok := factorDist[f]; ok && pr > 0 {
			post.Probs[n] = pr
			total += pr
		}
	}
	if total == 0 {
		return post, nil
	}
	for n := range post.Probs {
		post.Probs[n] /= total
	}
	return post, nil
}
