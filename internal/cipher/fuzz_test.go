package cipher

import (
	"testing"

	"medsen/internal/drbg"
)

// FuzzUnmarshalSchedule hardens the key-schedule decoder against malformed
// input: it must reject or round-trip, never panic. Run with
// `go test -fuzz FuzzUnmarshalSchedule ./internal/cipher`.
func FuzzUnmarshalSchedule(f *testing.F) {
	valid, err := func() ([]byte, error) {
		s, err := Generate(DefaultParams(), 3, drbg.NewFromSeed(1))
		if err != nil {
			return nil, err
		}
		return s.MarshalBinary()
	}()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("MSK1"))
	f.Add(valid[:len(valid)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		var s Schedule
		if err := s.UnmarshalBinary(data); err != nil {
			return
		}
		// Anything accepted must re-encode to the identical bytes.
		re, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted schedule failed to re-marshal: %v", err)
		}
		if string(re) != string(data) {
			t.Fatal("decode/encode not idempotent")
		}
	})
}

// FuzzImportShared hardens the key-share opener.
func FuzzImportShared(f *testing.F) {
	s, err := Generate(DefaultParams(), 2, drbg.NewFromSeed(2))
	if err != nil {
		f.Fatal(err)
	}
	blob, err := s.ExportShared("pw")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob, "pw")
	f.Add(blob, "wrong")
	f.Add([]byte("MSKS"), "pw")
	f.Fuzz(func(t *testing.T, data []byte, pass string) {
		if pass == "" {
			return
		}
		_, _ = ImportShared(data, pass) // must not panic
	})
}
