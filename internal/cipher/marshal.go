package cipher

import (
	"encoding"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary serialization of key schedules. Schedules never leave the
// controller over the network; serialization exists so the controller can
// persist a schedule across the acquisition → analysis → decryption round
// trip and so tests can verify exact state round-tripping.

const scheduleMagic = "MSK1"

var (
	_ encoding.BinaryMarshaler   = (*Schedule)(nil)
	_ encoding.BinaryUnmarshaler = (*Schedule)(nil)
)

// ErrBadScheduleEncoding reports a malformed serialized schedule.
var ErrBadScheduleEncoding = errors.New("cipher: malformed schedule encoding")

// MarshalBinary encodes the schedule. Quantized levels are stored exactly.
func (s *Schedule) MarshalBinary() ([]byte, error) {
	if err := s.Params.Validate(); err != nil {
		return nil, fmt.Errorf("cipher: marshaling invalid schedule: %w", err)
	}
	n := s.Params.NumElectrodes
	maskLen := (n + 7) / 8
	buf := make([]byte, 0, 4+2*4+8*7+1+4+len(s.Epochs)*(maskLen+n+1))
	buf = append(buf, scheduleMagic...)
	buf = appendParams(buf, s.Params)
	var b8 [8]byte
	binary.BigEndian.PutUint64(b8[:], math.Float64bits(s.DurationS))
	buf = append(buf, b8[:]...)
	var b4 [4]byte
	binary.BigEndian.PutUint32(b4[:], uint32(len(s.Epochs)))
	buf = append(buf, b4[:]...)

	for _, e := range s.Epochs {
		if len(e.Active) != n || len(e.GainLevel) != n {
			return nil, fmt.Errorf("cipher: epoch key sized %d/%d, want %d",
				len(e.Active), len(e.GainLevel), n)
		}
		mask := make([]byte, maskLen)
		for i, on := range e.Active {
			if on {
				mask[i/8] |= 1 << (i % 8)
			}
		}
		buf = append(buf, mask...)
		buf = append(buf, e.GainLevel...)
		buf = append(buf, e.SpeedLevel)
	}
	return buf, nil
}

// UnmarshalBinary decodes a schedule produced by MarshalBinary.
func (s *Schedule) UnmarshalBinary(data []byte) error {
	r := &reader{data: data}
	if string(r.bytes(4)) != scheduleMagic {
		return fmt.Errorf("%w: bad magic", ErrBadScheduleEncoding)
	}
	p, err := readParams(r)
	if err != nil {
		return err
	}
	duration := r.f64()
	nEpochs := int(r.u32())
	if r.err != nil {
		return fmt.Errorf("%w: truncated header", ErrBadScheduleEncoding)
	}
	const maxEpochs = 1 << 24
	if nEpochs < 0 || nEpochs > maxEpochs {
		return fmt.Errorf("%w: epoch count %d out of range", ErrBadScheduleEncoding, nEpochs)
	}

	n := p.NumElectrodes
	maskLen := (n + 7) / 8
	epochs := make([]EpochKey, nEpochs)
	for i := range epochs {
		mask := r.bytes(maskLen)
		gains := r.bytes(n)
		speed := r.byte()
		if r.err != nil {
			return fmt.Errorf("%w: truncated epoch %d", ErrBadScheduleEncoding, i)
		}
		e := EpochKey{
			Active:     make([]bool, n),
			GainLevel:  append([]uint8(nil), gains...),
			SpeedLevel: speed,
		}
		for j := 0; j < n; j++ {
			e.Active[j] = mask[j/8]&(1<<(j%8)) != 0
		}
		epochs[i] = e
	}
	if len(r.data) != r.off {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadScheduleEncoding, len(r.data)-r.off)
	}
	s.Params = p
	s.DurationS = duration
	s.Epochs = epochs
	return nil
}

// reader is a cursor over a byte slice that records the first failure
// instead of panicking, so decode paths handle truncation uniformly.
type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || r.off+n > len(r.data) {
		if r.err == nil {
			r.err = ErrBadScheduleEncoding
		}
		return make([]byte, n)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) byte() byte   { return r.bytes(1)[0] }
func (r *reader) u16() uint16  { return binary.BigEndian.Uint16(r.bytes(2)) }
func (r *reader) u32() uint32  { return binary.BigEndian.Uint32(r.bytes(4)) }
func (r *reader) f64() float64 { return math.Float64frombits(binary.BigEndian.Uint64(r.bytes(8))) }

const perCellMagic = "MSKC"

var (
	_ encoding.BinaryMarshaler   = (*PerCellSchedule)(nil)
	_ encoding.BinaryUnmarshaler = (*PerCellSchedule)(nil)
)

// MarshalBinary encodes a per-cell schedule (same layout as an epoch
// schedule, under its own magic, without the duration field).
func (s *PerCellSchedule) MarshalBinary() ([]byte, error) {
	if err := s.Params.Validate(); err != nil {
		return nil, fmt.Errorf("cipher: marshaling invalid per-cell schedule: %w", err)
	}
	n := s.Params.NumElectrodes
	maskLen := (n + 7) / 8
	buf := make([]byte, 0, 4+2*3+8*6+2+1+4+len(s.Keys)*(maskLen+n+1))
	buf = append(buf, perCellMagic...)
	buf = appendParams(buf, s.Params)
	var b4 [4]byte
	binary.BigEndian.PutUint32(b4[:], uint32(len(s.Keys)))
	buf = append(buf, b4[:]...)
	for _, e := range s.Keys {
		if len(e.Active) != n || len(e.GainLevel) != n {
			return nil, fmt.Errorf("cipher: per-cell key sized %d/%d, want %d",
				len(e.Active), len(e.GainLevel), n)
		}
		mask := make([]byte, maskLen)
		for i, on := range e.Active {
			if on {
				mask[i/8] |= 1 << (i % 8)
			}
		}
		buf = append(buf, mask...)
		buf = append(buf, e.GainLevel...)
		buf = append(buf, e.SpeedLevel)
	}
	return buf, nil
}

// UnmarshalBinary decodes a per-cell schedule.
func (s *PerCellSchedule) UnmarshalBinary(data []byte) error {
	r := &reader{data: data}
	if string(r.bytes(4)) != perCellMagic {
		return fmt.Errorf("%w: bad magic", ErrBadScheduleEncoding)
	}
	p, err := readParams(r)
	if err != nil {
		return err
	}
	nKeys := int(r.u32())
	if r.err != nil {
		return fmt.Errorf("%w: truncated header", ErrBadScheduleEncoding)
	}
	const maxKeys = 1 << 24
	if nKeys < 0 || nKeys > maxKeys {
		return fmt.Errorf("%w: key count %d out of range", ErrBadScheduleEncoding, nKeys)
	}
	n := p.NumElectrodes
	maskLen := (n + 7) / 8
	keys := make([]EpochKey, nKeys)
	for i := range keys {
		mask := r.bytes(maskLen)
		gains := r.bytes(n)
		speed := r.byte()
		if r.err != nil {
			return fmt.Errorf("%w: truncated key %d", ErrBadScheduleEncoding, i)
		}
		e := EpochKey{
			Active:     make([]bool, n),
			GainLevel:  append([]uint8(nil), gains...),
			SpeedLevel: speed,
		}
		for j := 0; j < n; j++ {
			e.Active[j] = mask[j/8]&(1<<(j%8)) != 0
		}
		keys[i] = e
	}
	if len(r.data) != r.off {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadScheduleEncoding, len(r.data)-r.off)
	}
	s.Params = p
	s.Keys = keys
	return nil
}

// appendParams serializes the shared Params header fields.
func appendParams(buf []byte, p Params) []byte {
	u16 := func(v int) {
		var b [2]byte
		binary.BigEndian.PutUint16(b[:], uint16(v))
		buf = append(buf, b[:]...)
	}
	f64 := func(v float64) {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
		buf = append(buf, b[:]...)
	}
	u16(p.NumElectrodes)
	u16(p.GainLevels)
	u16(p.SpeedLevels)
	f64(p.GainMin)
	f64(p.GainMax)
	f64(p.SpeedMin)
	f64(p.SpeedMax)
	f64(p.NominalVelocityUmS)
	f64(p.EpochS)
	u16(p.MinActive)
	if p.AvoidAdjacent {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

// readParams decodes the shared Params header fields.
func readParams(r *reader) (Params, error) {
	var p Params
	p.NumElectrodes = int(r.u16())
	p.GainLevels = int(r.u16())
	p.SpeedLevels = int(r.u16())
	p.GainMin = r.f64()
	p.GainMax = r.f64()
	p.SpeedMin = r.f64()
	p.SpeedMax = r.f64()
	p.NominalVelocityUmS = r.f64()
	p.EpochS = r.f64()
	p.MinActive = int(r.u16())
	p.AvoidAdjacent = r.byte() == 1
	if r.err != nil {
		return Params{}, fmt.Errorf("%w: truncated params", ErrBadScheduleEncoding)
	}
	if err := p.Validate(); err != nil {
		return Params{}, fmt.Errorf("%w: %v", ErrBadScheduleEncoding, err)
	}
	return p, nil
}
