package cipher

import (
	"bytes"
	"errors"
	"testing"

	"medsen/internal/drbg"
)

func testSchedule(t *testing.T) *Schedule {
	t.Helper()
	s, err := Generate(DefaultParams(), 30, drbg.NewFromSeed(123))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestKeyShareRoundTrip(t *testing.T) {
	orig := testSchedule(t)
	blob, err := orig.ExportShared("practitioner-passphrase")
	if err != nil {
		t.Fatalf("ExportShared: %v", err)
	}
	got, err := ImportShared(blob, "practitioner-passphrase")
	if err != nil {
		t.Fatalf("ImportShared: %v", err)
	}
	wantBytes, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBytes, gotBytes) {
		t.Fatal("schedule corrupted through key share round trip")
	}
}

func TestKeyShareWrongPassphrase(t *testing.T) {
	blob, err := testSchedule(t).ExportShared("right")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ImportShared(blob, "wrong"); !errors.Is(err, ErrWrongPassphrase) {
		t.Fatalf("expected ErrWrongPassphrase, got %v", err)
	}
}

func TestKeyShareTamperDetected(t *testing.T) {
	blob, err := testSchedule(t).ExportShared("pass")
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{0, 5, len(blob) / 2, len(blob) - 1} {
		tampered := append([]byte(nil), blob...)
		tampered[idx] ^= 0x01
		if _, err := ImportShared(tampered, "pass"); err == nil {
			t.Errorf("tamper at byte %d not detected", idx)
		}
	}
}

func TestKeyShareTruncated(t *testing.T) {
	blob, err := testSchedule(t).ExportShared("pass")
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 4, 10, 30} {
		if _, err := ImportShared(blob[:cut], "pass"); !errors.Is(err, ErrBadShare) {
			t.Errorf("truncation at %d: got %v", cut, err)
		}
	}
}

func TestKeyShareEmptyPassphrase(t *testing.T) {
	if _, err := testSchedule(t).ExportShared(""); err == nil {
		t.Fatal("expected error for empty passphrase")
	}
}

func TestKeyShareBlobsAreNondeterministic(t *testing.T) {
	s := testSchedule(t)
	a, err := s.ExportShared("pass")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.ExportShared("pass")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("two exports should differ (fresh salt and nonce)")
	}
	// Both must still open.
	if _, err := ImportShared(a, "pass"); err != nil {
		t.Fatal(err)
	}
	if _, err := ImportShared(b, "pass"); err != nil {
		t.Fatal(err)
	}
}

func TestKeyShareUnsupportedVersion(t *testing.T) {
	blob, err := testSchedule(t).ExportShared("pass")
	if err != nil {
		t.Fatal(err)
	}
	blob[len(shareMagic)] = 9
	if _, err := ImportShared(blob, "pass"); !errors.Is(err, ErrBadShare) {
		t.Fatalf("expected ErrBadShare for bad version, got %v", err)
	}
}
