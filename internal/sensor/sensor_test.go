package sensor

import (
	"math"
	"testing"

	"medsen/internal/cipher"
	"medsen/internal/drbg"
	"medsen/internal/electrode"
	"medsen/internal/lockin"
	"medsen/internal/microfluidic"
	"medsen/internal/sigproc"
)

// analysisChannel is the carrier the tests run peak detection on; 2 MHz is
// the frequency the paper's Fig. 11 captures use.
const analysisChannel = 2000e3

func quietSensor(t *testing.T) *Sensor {
	t.Helper()
	s := NewDefault()
	// Tame noise and drift so count assertions are tight; dedicated
	// tests cover noisy operation.
	s.Lockin.NoiseSigma = 0.00008
	s.Lockin.Drift = lockin.Drift{LinearPerHour: -0.02}
	s.Loss = microfluidic.LossModel{Disabled: true}
	return s
}

func detect(t *testing.T, acq lockin.Acquisition, freqHz float64) []sigproc.Peak {
	t.Helper()
	tr, err := acq.Channel(freqHz)
	if err != nil {
		t.Fatalf("Channel: %v", err)
	}
	flat, err := sigproc.Detrend(tr, sigproc.DefaultDetrendConfig())
	if err != nil {
		t.Fatalf("Detrend: %v", err)
	}
	return sigproc.DetectPeaks(flat, sigproc.DefaultPeakConfig())
}

func TestNewValidation(t *testing.T) {
	arr := electrode.MustArray(9)
	ch := microfluidic.DefaultChannel()
	lk := lockin.DefaultConfig()
	carriers := lockin.DefaultCarriersHz()

	if _, err := New(electrode.Array{}, ch, carriers, lk); err == nil {
		t.Error("expected error for invalid array")
	}
	if _, err := New(arr, microfluidic.Channel{}, carriers, lk); err == nil {
		t.Error("expected error for invalid channel")
	}
	if _, err := New(arr, ch, nil, lk); err == nil {
		t.Error("expected error for no carriers")
	}
	if _, err := New(arr, ch, []float64{-5}, lk); err == nil {
		t.Error("expected error for negative carrier")
	}
	if _, err := New(arr, ch, carriers, lockin.Config{}); err == nil {
		t.Error("expected error for invalid lockin config")
	}
	if _, err := New(arr, ch, carriers, lk); err != nil {
		t.Errorf("valid construction failed: %v", err)
	}
}

func TestAcquireValidation(t *testing.T) {
	s := quietSensor(t)
	sample := microfluidic.NewSample(10, map[microfluidic.Type]float64{microfluidic.TypeBloodCell: 500})
	if _, err := s.Acquire(AcquireConfig{Sample: sample, DurationS: 10}, nil); err == nil {
		t.Error("expected nil-rng error")
	}
	if _, err := s.Acquire(AcquireConfig{Sample: sample, DurationS: 0}, drbg.NewFromSeed(1)); err == nil {
		t.Error("expected duration error")
	}
	short, err := cipher.Generate(cipher.DefaultParams(), 1, drbg.NewFromSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Acquire(AcquireConfig{Sample: sample, DurationS: 10, Schedule: short}, drbg.NewFromSeed(1)); err == nil {
		t.Error("expected schedule-coverage error")
	}
}

func TestPlaintextAcquireOnePeakPerParticle(t *testing.T) {
	s := quietSensor(t)
	sample := microfluidic.NewSample(10, map[microfluidic.Type]float64{
		microfluidic.TypeBloodCell: 150, // ~0.2 arrivals/s: single-file
	})
	res, err := s.Acquire(AcquireConfig{Sample: sample, DurationS: 120}, drbg.NewFromSeed(21))
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if len(res.Transits) == 0 {
		t.Fatal("no transits generated")
	}
	peaks := detect(t, res.Acquisition, analysisChannel)
	// Plaintext mode: lead electrode only → exactly one peak per particle
	// (coincident particles may merge occasionally).
	diff := math.Abs(float64(len(peaks) - len(res.Transits)))
	if diff > 0.05*float64(len(res.Transits))+1 {
		t.Fatalf("peaks %d vs transits %d", len(peaks), len(res.Transits))
	}
}

func TestEncryptedAcquireMultipliesPeaks(t *testing.T) {
	s := quietSensor(t)
	p := s.CipherParams()
	p.MinActive = 2
	// Unit-ish gains keep every peak above detection threshold here; gain
	// ablation is tested separately.
	p.GainMin, p.GainMax = 0.9, 1.8
	sched, err := cipher.Generate(p, 180, drbg.NewFromSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	sample := microfluidic.NewSample(10, map[microfluidic.Type]float64{
		microfluidic.TypeBloodCell: 150,
	})
	res, err := s.Acquire(AcquireConfig{Sample: sample, DurationS: 180, Schedule: sched}, drbg.NewFromSeed(22))
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	peaks := detect(t, res.Acquisition, analysisChannel)

	// Expected ciphertext peak count: per transit, each gap crossing is
	// gated by the key in force when the particle reaches it.
	want := 0
	crossings := s.Array.Crossings(nil)
	for _, tr := range res.Transits {
		v := tr.VelocityUmS * sched.SpeedAt(tr.EntryS)
		for _, c := range crossings {
			if sched.KeyAt(tr.EntryS + c.OffsetUm/v).Active[c.Electrode] {
				want++
			}
		}
	}
	if want <= len(res.Transits) {
		t.Fatalf("test setup: expected multiplication, want %d > transits %d", want, len(res.Transits))
	}
	diff := math.Abs(float64(len(peaks) - want))
	if diff > 0.10*float64(want)+2 {
		t.Fatalf("ciphertext peaks %d, want ~%d (true particles: %d)", len(peaks), want, len(res.Transits))
	}
}

func TestEncryptDetectDecryptRoundTrip(t *testing.T) {
	s := quietSensor(t)
	p := s.CipherParams()
	p.MinActive = 2
	p.GainMin, p.GainMax = 0.9, 1.8
	sched, err := cipher.Generate(p, 180, drbg.NewFromSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	sample := microfluidic.NewSample(10, map[microfluidic.Type]float64{
		microfluidic.TypeBloodCell: 150,
	})
	res, err := s.Acquire(AcquireConfig{Sample: sample, DurationS: 180, Schedule: sched}, drbg.NewFromSeed(23))
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	peaks := detect(t, res.Acquisition, analysisChannel)
	dec, err := sched.Decrypt(peaks, s.Array)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	truth := len(res.Transits)
	if truth == 0 {
		t.Fatal("no transits")
	}
	relErr := math.Abs(float64(dec.Count-truth)) / float64(truth)
	if relErr > 0.10 {
		t.Fatalf("decrypted count %d vs truth %d (rel err %.3f)", dec.Count, truth, relErr)
	}
	// Resolved particles should recover the blood-cell amplitude at the
	// analysis carrier within the noise floor.
	if len(dec.Particles) == 0 {
		t.Fatal("no particles resolved")
	}
	wantAmp := microfluidic.PropertiesOf(microfluidic.TypeBloodCell).AmplitudeAt(analysisChannel)
	amps := make([]float64, 0, len(dec.Particles))
	for _, est := range dec.Particles {
		amps = append(amps, est.Amplitude)
	}
	meanAmp := sigproc.Mean(amps)
	if math.Abs(meanAmp-wantAmp)/wantAmp > 0.25 {
		t.Fatalf("mean recovered amplitude %v, want ~%v", meanAmp, wantAmp)
	}
}

func TestEavesdropperSeesMultipliedCount(t *testing.T) {
	// The analyst's raw peak count must not match the true count under
	// encryption (that is the whole point of the cipher).
	s := quietSensor(t)
	p := s.CipherParams()
	p.MinActive = 3
	p.GainMin, p.GainMax = 0.9, 1.8
	sched, err := cipher.Generate(p, 60, drbg.NewFromSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	sample := microfluidic.NewSample(10, map[microfluidic.Type]float64{
		microfluidic.TypeBloodCell: 150,
	})
	res, err := s.Acquire(AcquireConfig{Sample: sample, DurationS: 60, Schedule: sched}, drbg.NewFromSeed(29))
	if err != nil {
		t.Fatal(err)
	}
	peaks := detect(t, res.Acquisition, analysisChannel)
	if float64(len(peaks)) < 2.5*float64(len(res.Transits)) {
		t.Fatalf("ciphertext count %d should be a large multiple of truth %d",
			len(peaks), len(res.Transits))
	}
}

func TestAcquireDeterministicWithSeed(t *testing.T) {
	s := quietSensor(t)
	sample := microfluidic.NewSample(10, map[microfluidic.Type]float64{
		microfluidic.TypeBead780: 600,
	})
	cfg := AcquireConfig{Sample: sample, DurationS: 20}
	a, err := s.Acquire(cfg, drbg.NewFromSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Acquire(cfg, drbg.NewFromSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Transits) != len(b.Transits) {
		t.Fatal("transit streams differ")
	}
	ta := a.Acquisition.Traces[0].Samples
	tb := b.Acquisition.Traces[0].Samples
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatal("traces differ for equal seeds")
		}
	}
}

func TestAcquireAllCarriersRendered(t *testing.T) {
	s := quietSensor(t)
	sample := microfluidic.NewSample(10, map[microfluidic.Type]float64{
		microfluidic.TypeBead358: 400,
	})
	res, err := s.Acquire(AcquireConfig{Sample: sample, DurationS: 10}, drbg.NewFromSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Acquisition.Traces); got != len(lockin.DefaultCarriersHz()) {
		t.Fatalf("rendered %d carriers", got)
	}
	for i, tr := range res.Acquisition.Traces {
		if len(tr.Samples) != 4500 {
			t.Fatalf("carrier %d trace length %d, want 4500", i, len(tr.Samples))
		}
	}
}
