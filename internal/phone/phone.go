// Package phone models the untrusted smartphone relay of §VI-D: the Android
// app that receives the (already encrypted) measurements from the controller
// over the accessory link, zip-compresses them "to improve the network
// transfer efficiency", uploads them to the cloud over a simulated 4G link,
// relays the analysis outcome back, and shows test progression to the user.
//
// The phone holds no keys and learns nothing beyond ciphertext sizes and
// timings — it sits outside MedSen's trusted computing base (§II).
package phone

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"medsen/internal/cloud"
	"medsen/internal/csvio"
	"medsen/internal/lockin"
	"medsen/internal/promexp"
)

// Link models a cellular uplink by bandwidth and round-trip time. Transfer
// durations are *computed*, not slept, so experiments can report network
// costs without real elapsed time; Sleep turns on real sleeping for live
// demos.
type Link struct {
	// UplinkBps is the sustained uplink throughput in bytes per second.
	UplinkBps float64
	// RTT is the request round-trip latency.
	RTT time.Duration
	// Sleep makes Transfer actually block for the simulated duration.
	Sleep bool
}

// Default4G returns a typical 2016-era LTE uplink: ~8 Mbit/s up, 50 ms RTT.
func Default4G() Link {
	return Link{UplinkBps: 1e6, RTT: 50 * time.Millisecond}
}

// TransferTime returns the simulated time to move n bytes over the link.
func (l Link) TransferTime(n int) time.Duration {
	if l.UplinkBps <= 0 {
		return l.RTT
	}
	return l.RTT + time.Duration(float64(n)/l.UplinkBps*float64(time.Second))
}

// TransferContext simulates (and, when Sleep is set, actually performs) the
// wait for n bytes, honouring context cancellation.
func (l Link) TransferContext(ctx context.Context, n int) (time.Duration, error) {
	d := l.TransferTime(n)
	if !l.Sleep {
		return d, ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return d, nil
	case <-ctx.Done():
		return d, ctx.Err()
	}
}

// UploadStats reports what one relay run cost.
type UploadStats struct {
	// RawBytes is the CSV payload size before compression.
	RawBytes int64
	// CompressedBytes is the zip payload size actually uploaded.
	CompressedBytes int64
	// SimulatedTransfer is the modeled 4G transfer duration for the
	// compressed payload.
	SimulatedTransfer time.Duration
	// CompressionRatio is RawBytes / CompressedBytes.
	CompressionRatio float64
}

// Relay is the phone application: accessory endpoint on one side, cloud
// client on the other.
type Relay struct {
	// Client talks to the analysis service.
	Client *cloud.Client
	// Uplink models the cellular link.
	Uplink Link
	// Progress, when non-nil, receives UI status strings ("it provides
	// ... test progression feedback to the user via information on the
	// screen", §VI-D).
	Progress func(string)
	// Async submits through the service's job API and polls for the
	// result instead of holding the upload connection open for the whole
	// analysis — the right mode for long captures and loaded servers.
	Async bool
	// PollInterval paces async status polls (0 → the client default).
	PollInterval time.Duration
	// Breaker, when non-nil, short-circuits the live-upload path in
	// SubmitOrSpool: after repeated failures captures spool directly to
	// the offline queue without paying a transfer plus a timeout each,
	// and a half-open probe after the cooldown restores live uploads.
	Breaker *Breaker

	// Counters behind Metrics, updated atomically (a relay is shared
	// between the accessory daemon and flush paths).
	liveSubmits    int64
	submitFailures int64
	spooled        int64
	backlogFlushed int64
}

// RelayMetrics is a point-in-time snapshot of the relay's upload counters
// and circuit-breaker state, the phone-side counterpart of the cloud
// service's /metrics document.
type RelayMetrics struct {
	// LiveSubmits counts captures delivered over the live path (including
	// async submit-and-poll completions).
	LiveSubmits int64 `json:"live_submits"`
	// SubmitFailures counts live submissions that returned an error.
	SubmitFailures int64 `json:"submit_failures"`
	// Spooled counts captures diverted to the offline queue.
	Spooled int64 `json:"spooled"`
	// BacklogFlushed counts spooled captures later shipped by the
	// post-recovery flush inside SubmitOrSpool.
	BacklogFlushed int64 `json:"backlog_flushed"`
	// BreakerState is "closed", "open" or "half-open" ("closed" when the
	// relay has no breaker: the live path is always admitted).
	BreakerState string `json:"breaker_state"`
}

// Metrics returns a snapshot of the relay's counters and breaker state.
func (r *Relay) Metrics() RelayMetrics {
	m := RelayMetrics{
		LiveSubmits:    atomic.LoadInt64(&r.liveSubmits),
		SubmitFailures: atomic.LoadInt64(&r.submitFailures),
		Spooled:        atomic.LoadInt64(&r.spooled),
		BacklogFlushed: atomic.LoadInt64(&r.backlogFlushed),
		BreakerState:   BreakerClosed.String(),
	}
	if r.Breaker != nil {
		m.BreakerState = r.Breaker.State().String()
	}
	return m
}

// WritePrometheus appends the relay's counters and breaker state to a
// Prometheus exposition, the phone-side families next to the cloud's
// medsen_* set. The breaker state renders one-hot — one sample per state,
// value 1 on the current one — so dashboards can plot transitions without
// decoding an enum. labels are extra name/value pairs stamped on every
// sample (e.g. a loadgen device id); aggregating exporters that merge many
// relays must pass distinct labels or emit one merged snapshot.
func (m RelayMetrics) WritePrometheus(pw *promexp.Writer, labels ...string) {
	pw.Counter("medsen_relay_live_submits_total",
		"Captures delivered over the live upload path.", float64(m.LiveSubmits), labels...)
	pw.Counter("medsen_relay_submit_failures_total",
		"Live submissions that returned an error.", float64(m.SubmitFailures), labels...)
	pw.Counter("medsen_relay_spooled_total",
		"Captures diverted to the offline queue.", float64(m.Spooled), labels...)
	pw.Counter("medsen_relay_backlog_flushed_total",
		"Spooled captures shipped by the post-recovery flush.", float64(m.BacklogFlushed), labels...)
	for _, st := range []string{
		BreakerClosed.String(), BreakerOpen.String(), BreakerHalfOpen.String(),
	} {
		v := 0.0
		if st == m.BreakerState {
			v = 1
		}
		pw.Gauge("medsen_relay_breaker_state",
			"One-hot circuit breaker state (1 on the current state).", v,
			append(append([]string(nil), labels...), "state", st)...)
	}
}

func (r *Relay) progress(format string, args ...any) {
	if r.Progress != nil {
		r.Progress(fmt.Sprintf(format, args...))
	}
}

// Upload compresses and ships an acquisition to the cloud, returning the
// submission outcome and transfer statistics.
func (r *Relay) Upload(ctx context.Context, acq lockin.Acquisition) (cloud.SubmitResponse, UploadStats, error) {
	if r.Client == nil {
		return cloud.SubmitResponse{}, UploadStats{}, errors.New("phone: relay has no cloud client")
	}
	r.progress("compressing measurements")
	raw, err := csvio.CSVSize(acq)
	if err != nil {
		return cloud.SubmitResponse{}, UploadStats{}, err
	}
	payload, err := csvio.CompressAcquisition(acq)
	if err != nil {
		return cloud.SubmitResponse{}, UploadStats{}, err
	}
	stats := UploadStats{
		RawBytes:        raw,
		CompressedBytes: int64(len(payload)),
	}
	if stats.CompressedBytes > 0 {
		stats.CompressionRatio = float64(stats.RawBytes) / float64(stats.CompressedBytes)
	}

	r.progress("uploading %d bytes (%.1fx compressed)", stats.CompressedBytes, stats.CompressionRatio)
	d, err := r.Uplink.TransferContext(ctx, len(payload))
	stats.SimulatedTransfer = d
	if err != nil {
		return cloud.SubmitResponse{}, stats, fmt.Errorf("phone: uplink: %w", err)
	}

	sub, err := r.Submit(ctx, payload)
	if err != nil {
		return cloud.SubmitResponse{}, stats, err
	}
	r.progress("analysis %s complete: %d peaks", sub.ID, sub.Report.PeakCount)
	return sub, stats, nil
}

// Submit ships an already compressed payload to the cloud using the relay's
// configured mode: the synchronous upload, or the async job API with
// polling (which rides out queue-full backpressure and — because accepted
// jobs are journaled server-side — an analysis-service restart mid-poll).
//
// Every submission carries the payload's content-derived idempotency key
// (cloud.CaptureKey), so a retry of the same capture — here, from the
// offline queue, or from a fresh process after a phone crash — dedups
// server-side instead of producing a second analysis.
func (r *Relay) Submit(ctx context.Context, payload []byte) (cloud.SubmitResponse, error) {
	return r.SubmitKeyed(ctx, payload, cloud.CaptureKey(payload))
}

// SubmitKeyed is Submit under an explicit Idempotency-Key. Distinct keys
// force distinct analyses even for byte-identical payloads, which is what a
// load generator replaying one reference capture across a simulated fleet
// needs; production relays should stay on Submit's content-derived key.
func (r *Relay) SubmitKeyed(ctx context.Context, payload []byte, key string) (cloud.SubmitResponse, error) {
	if r.Client == nil {
		return cloud.SubmitResponse{}, errors.New("phone: relay has no cloud client")
	}
	var sub cloud.SubmitResponse
	var err error
	if r.Async {
		r.progress("submitted async; polling for the analysis result")
		sub, err = r.Client.SubmitAndPollKeyed(ctx, payload, r.PollInterval, key)
	} else {
		sub, err = r.Client.SubmitCompressedKeyed(ctx, payload, key)
	}
	if err != nil {
		atomic.AddInt64(&r.submitFailures, 1)
		return sub, err
	}
	atomic.AddInt64(&r.liveSubmits, 1)
	return sub, nil
}

// Analyze implements the controller's Analyzer port: it relays the
// acquisition through the phone and returns only the report, exactly what
// the controller needs for decryption.
func (r *Relay) Analyze(ctx context.Context, acq lockin.Acquisition) (cloud.Report, error) {
	sub, _, err := r.Upload(ctx, acq)
	if err != nil {
		return cloud.Report{}, err
	}
	return sub.Report, nil
}

// SubmitAndAuthenticate uploads a (plaintext-mode) capture and immediately
// runs server-side cyto-coded authentication on it — the phone-side half of
// a §V login. It implements the controller's AuthPort.
func (r *Relay) SubmitAndAuthenticate(ctx context.Context, acq lockin.Acquisition) (cloud.AuthResult, error) {
	sub, _, err := r.Upload(ctx, acq)
	if err != nil {
		return cloud.AuthResult{}, err
	}
	res, err := r.Client.Authenticate(ctx, sub.ID)
	if err != nil {
		return cloud.AuthResult{}, err
	}
	r.progress("authentication: matched=%q ok=%v", res.UserID, res.Authenticated)
	return res, nil
}
