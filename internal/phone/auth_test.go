package phone

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"medsen/internal/audit"
	"medsen/internal/auth"
	"medsen/internal/cloud"
	"medsen/internal/csvio"
)

// authedCloud starts an analysis service with authentication enabled and
// returns its URL plus an owner-key secret for the given subject.
func authedCloud(t *testing.T, subject string) (baseURL, secret string) {
	t.Helper()
	ks, err := auth.OpenKeystore(nil, "")
	if err != nil {
		t.Fatal(err)
	}
	_, secret, err = ks.Issue(auth.RoleOwner, subject)
	if err != nil {
		t.Fatal(err)
	}
	log, err := audit.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	svc, err := cloud.NewService(cloud.ServiceConfig{Keystore: ks, Audit: log})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts.URL, secret
}

// TestRelayAuthenticatesLiveUpload: the relay's bearer key rides every live
// upload, and without it the same request is a 401 the relay surfaces.
func TestRelayAuthenticatesLiveUpload(t *testing.T) {
	url, secret := authedCloud(t, "alice")
	acq := testAcquisitionSeeded(t, 210)

	relay := &Relay{Client: &cloud.Client{BaseURL: url, APIKey: secret}, Uplink: Default4G()}
	sub, _, err := relay.Upload(context.Background(), acq)
	if err != nil {
		t.Fatalf("authenticated upload: %v", err)
	}
	if sub.ID == "" {
		t.Fatalf("submission = %+v", sub)
	}

	bare := &Relay{Client: &cloud.Client{BaseURL: url}, Uplink: Default4G()}
	if _, _, err := bare.Upload(context.Background(), acq); !errors.Is(err, cloud.ErrUnauthenticated) {
		t.Fatalf("unauthenticated upload: %v, want ErrUnauthenticated", err)
	}
}

// TestSpoolFlushAuthenticates: spooled entries replay with the client's
// bearer key, and a 401 is a *transient* flush failure — the entries stay
// pending (never parked as .bad: the captures are fine, the credential is
// not) and ship untouched once a key is present.
func TestSpoolFlushAuthenticates(t *testing.T) {
	url, secret := authedCloud(t, "alice")
	q := &OfflineQueue{Dir: t.TempDir()}
	ctx := context.Background()

	for _, seed := range []uint64{211, 212} {
		payload, err := csvio.CompressAcquisition(testAcquisitionSeeded(t, seed))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := q.Enqueue(payload); err != nil {
			t.Fatal(err)
		}
	}

	// Flush without a key: fails, nothing shipped, nothing parked.
	if n, err := q.Flush(ctx, &cloud.Client{BaseURL: url}); err == nil || n != 0 {
		t.Fatalf("keyless flush shipped %d entries (err %v)", n, err)
	} else if !errors.Is(err, cloud.ErrUnauthenticated) {
		t.Fatalf("keyless flush: %v, want ErrUnauthenticated", err)
	}
	pending, err := q.Pending()
	if err != nil {
		t.Fatal(err)
	}
	parked, err := q.Parked()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 2 || len(parked) != 0 {
		t.Fatalf("after 401 flush: %d pending, %d parked — a credential failure must not discard captures", len(pending), len(parked))
	}

	// Same spool, authenticated client: both entries ship.
	authed := &cloud.Client{BaseURL: url, APIKey: secret}
	n, err := q.Flush(ctx, authed)
	if err != nil || n != 2 {
		t.Fatalf("authenticated flush: %d entries, %v", n, err)
	}
	if pending, _ := q.Pending(); len(pending) != 0 {
		t.Fatalf("entries left after successful flush: %v", pending)
	}
	// And the replayed analyses are owned by the key's subject.
	rows, _, err := authed.ListAnalysesPage(ctx, cloud.Page{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("owner sees %d analyses after flush, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Owner != "alice" {
			t.Fatalf("flushed analysis owned by %q", r.Owner)
		}
	}
}

// TestBreakerRecoveryFlushAuthenticates: the breaker's backlog flush on
// recovery is the third relay upload path — it too must carry the key. An
// unauthenticated relay trips the breaker and spools; once the key is set,
// the next live success drains the backlog through the authenticated client.
func TestBreakerRecoveryFlushAuthenticates(t *testing.T) {
	url, secret := authedCloud(t, "alice")
	ctx := context.Background()
	q := &OfflineQueue{Dir: t.TempDir()}
	relay := &Relay{
		Client:  &cloud.Client{BaseURL: url}, // key deliberately absent
		Uplink:  Default4G(),
		Breaker: &Breaker{Threshold: 1, Cooldown: time.Nanosecond},
	}

	payload1, err := csvio.CompressAcquisition(testAcquisitionSeeded(t, 213))
	if err != nil {
		t.Fatal(err)
	}
	sub, queued, err := relay.SubmitOrSpool(ctx, payload1, q)
	if err != nil || !queued {
		t.Fatalf("unauthenticated submit: queued=%v err=%v sub=%+v", queued, err, sub)
	}
	if relay.Breaker.State() != BreakerOpen {
		t.Fatalf("breaker state %v after auth failure, want open", relay.Breaker.State())
	}

	// Credential installed; the nanosecond cooldown has long elapsed, so the
	// next capture is the half-open probe — it goes live and drags the
	// spooled one with it.
	relay.Client.APIKey = secret
	payload2, err := csvio.CompressAcquisition(testAcquisitionSeeded(t, 214))
	if err != nil {
		t.Fatal(err)
	}
	sub, queued, err = relay.SubmitOrSpool(ctx, payload2, q)
	if err != nil || queued || sub.ID == "" {
		t.Fatalf("recovered submit: queued=%v err=%v sub=%+v", queued, err, sub)
	}
	if pending, _ := q.Pending(); len(pending) != 0 {
		t.Fatalf("backlog not flushed on recovery: %v", pending)
	}
	if got := relay.Metrics().BacklogFlushed; got != 1 {
		t.Fatalf("BacklogFlushed = %d, want 1", got)
	}
}
