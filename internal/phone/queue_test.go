package phone

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"medsen/internal/cloud"
	"medsen/internal/csvio"
)

// flakyCloud wraps a live analysis service behind a switch that simulates a
// dead cellular link.
func flakyCloud(t *testing.T) (*cloud.Client, *atomic.Bool) {
	t.Helper()
	svc, err := cloud.NewService(cloud.ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var down atomic.Bool
	inner := svc.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return &cloud.Client{BaseURL: ts.URL}, &down
}

func TestQueueEnqueuePendingOrder(t *testing.T) {
	q := &OfflineQueue{Dir: t.TempDir()}
	for i := 0; i < 3; i++ {
		if _, err := q.Enqueue([]byte{byte(i)}); err != nil {
			t.Fatalf("Enqueue %d: %v", i, err)
		}
	}
	names, err := q.Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("pending = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatalf("queue order broken: %v", names)
		}
	}
}

func TestQueueRequiresDir(t *testing.T) {
	q := &OfflineQueue{}
	if _, err := q.Enqueue([]byte("x")); err == nil {
		t.Error("expected error without directory")
	}
	if _, err := q.Pending(); err == nil {
		t.Error("expected error without directory")
	}
}

func TestQueuePendingEmptyWhenDirMissing(t *testing.T) {
	q := &OfflineQueue{Dir: t.TempDir() + "/never-created"}
	names, err := q.Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("pending = %v", names)
	}
}

func TestUploadOrQueueSpoolsOnOutageAndFlushes(t *testing.T) {
	client, down := flakyCloud(t)
	relay := &Relay{Client: client, Uplink: Default4G()}
	q := &OfflineQueue{Dir: t.TempDir()}
	ctx := context.Background()

	// Live path first. Each upload is a distinct capture (distinct seeds):
	// identical bytes would dedup server-side into one analysis.
	sub, queued, err := relay.UploadOrQueue(ctx, testAcquisitionSeeded(t, 81), q)
	if err != nil || queued {
		t.Fatalf("live upload: sub=%+v queued=%v err=%v", sub, queued, err)
	}
	if sub.ID == "" {
		t.Fatal("no analysis id from live upload")
	}

	// Outage: captures spool instead of failing.
	down.Store(true)
	for i := 0; i < 2; i++ {
		_, queued, err := relay.UploadOrQueue(ctx, testAcquisitionSeeded(t, 82+uint64(i)), q)
		if err != nil {
			t.Fatalf("outage upload %d: %v", i, err)
		}
		if !queued {
			t.Fatalf("outage upload %d not spooled", i)
		}
	}
	if names, _ := q.Pending(); len(names) != 2 {
		t.Fatalf("pending = %v, want 2 entries", names)
	}

	// Flush fails while the link is down, without losing entries.
	if n, err := q.Flush(ctx, client); err == nil || n != 0 {
		t.Fatalf("flush during outage: n=%d err=%v", n, err)
	}
	if names, _ := q.Pending(); len(names) != 2 {
		t.Fatalf("entries lost during failed flush: %v", names)
	}

	// Connectivity returns: everything ships, spool drains.
	down.Store(false)
	n, err := q.Flush(ctx, client)
	if err != nil {
		t.Fatalf("flush: %v", err)
	}
	if n != 2 {
		t.Fatalf("flushed %d, want 2", n)
	}
	if names, _ := q.Pending(); len(names) != 0 {
		t.Fatalf("spool not drained: %v", names)
	}
	// The cloud now holds all three analyses.
	list, err := client.ListAnalyses(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("cloud has %d analyses, want 3", len(list))
	}
}

// TestFlushReplayDedupsToOriginalAnalysis models the crash window the spool
// leaves open: the upload succeeded but the process died before the spool
// file was removed, so the next flush replays the entry. The content-derived
// capture key maps the replay to the pre-crash analysis instead of
// double-counting the capture.
func TestFlushReplayDedupsToOriginalAnalysis(t *testing.T) {
	client, _ := flakyCloud(t)
	relay := &Relay{Client: client, Uplink: Default4G()}
	ctx := context.Background()

	payload, err := csvio.CompressAcquisition(testAcquisitionSeeded(t, 81))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := relay.Submit(ctx, payload)
	if err != nil {
		t.Fatal(err)
	}

	// "Crash": the shipped capture is still sitting in the spool when the
	// next process comes up and flushes.
	q := &OfflineQueue{Dir: t.TempDir()}
	if _, err := q.Enqueue(payload); err != nil {
		t.Fatal(err)
	}
	n, err := q.Flush(ctx, client)
	if err != nil {
		t.Fatalf("replay flush: %v", err)
	}
	if n != 1 {
		t.Fatalf("flushed %d, want 1", n)
	}
	if names, _ := q.Pending(); len(names) != 0 {
		t.Fatalf("spool not drained: %v", names)
	}
	list, err := client.ListAnalyses(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 {
		t.Fatalf("cloud has %d analyses, want 1 (replay deduped)", len(list))
	}
	if list[0].ID != sub.ID {
		t.Fatalf("surviving analysis %s, want the pre-crash %s", list[0].ID, sub.ID)
	}
}

func TestFlushValidation(t *testing.T) {
	q := &OfflineQueue{Dir: t.TempDir()}
	if _, err := q.Flush(context.Background(), nil); err == nil {
		t.Fatal("expected error for nil client")
	}
}

func TestUploadOrQueueNilQueue(t *testing.T) {
	relay := &Relay{Client: &cloud.Client{BaseURL: "http://127.0.0.1:1"}, Uplink: Default4G()}
	if _, _, err := relay.UploadOrQueue(context.Background(), testAcquisition(t), nil); err == nil {
		t.Fatal("expected error for nil queue")
	}
}

func TestQueueRoundTripPayloadIntact(t *testing.T) {
	q := &OfflineQueue{Dir: t.TempDir()}
	acq := testAcquisition(t)
	payload, err := csvio.CompressAcquisition(acq)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue(payload); err != nil {
		t.Fatal(err)
	}
	names, err := q.Pending()
	if err != nil || len(names) != 1 {
		t.Fatalf("pending %v err %v", names, err)
	}
}

func TestQueueSequenceContinuesAfterFlush(t *testing.T) {
	q := &OfflineQueue{Dir: t.TempDir()}
	first, err := q.Enqueue([]byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	second, err := q.Enqueue([]byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if first == second {
		t.Fatal("sequence numbers collided")
	}
	// Names must be zero-padded so lexical order equals numeric order.
	if len(first) != len(second) {
		t.Fatalf("inconsistent name widths: %q vs %q", first, second)
	}
}
