package phone

import (
	"bytes"
	"context"
	"testing"

	"medsen/internal/csvio"
	"medsen/internal/promexp"
)

// TestSubmitKeyedForcesDistinctAnalyses covers the loadgen seam: one payload
// submitted under two explicit keys must store two analyses, while the
// content-derived Submit path dedups a replay of the same bytes.
func TestSubmitKeyedForcesDistinctAnalyses(t *testing.T) {
	r := newRelay(t)
	ctx := context.Background()
	payload, err := csvio.CompressAcquisition(testAcquisition(t))
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.SubmitKeyed(ctx, payload, "fleet-d0-c0")
	if err != nil {
		t.Fatalf("SubmitKeyed: %v", err)
	}
	b, err := r.SubmitKeyed(ctx, payload, "fleet-d0-c1")
	if err != nil {
		t.Fatalf("SubmitKeyed: %v", err)
	}
	if a.ID == b.ID {
		t.Fatalf("distinct keys deduped to one analysis %s", a.ID)
	}
	dup, err := r.SubmitKeyed(ctx, payload, "fleet-d0-c0")
	if err != nil {
		t.Fatalf("SubmitKeyed replay: %v", err)
	}
	if dup.ID != a.ID {
		t.Fatalf("replayed key stored a new analysis %s (want %s)", dup.ID, a.ID)
	}
	if m := r.Metrics(); m.LiveSubmits != 3 || m.SubmitFailures != 0 {
		t.Fatalf("relay metrics = %+v", m)
	}
}

// TestRelayMetricsWritePrometheus pins the relay-side metric families and
// the one-hot breaker rendering.
func TestRelayMetricsWritePrometheus(t *testing.T) {
	m := RelayMetrics{
		LiveSubmits:    5,
		SubmitFailures: 2,
		Spooled:        3,
		BacklogFlushed: 1,
		BreakerState:   BreakerOpen.String(),
	}
	var buf bytes.Buffer
	pw := promexp.NewWriter(&buf)
	m.WritePrometheus(pw, "device", "d7")
	if err := pw.Err(); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	fams, err := promexp.Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, buf.String())
	}
	for name, want := range map[string]float64{
		"medsen_relay_live_submits_total":    5,
		"medsen_relay_submit_failures_total": 2,
		"medsen_relay_spooled_total":         3,
		"medsen_relay_backlog_flushed_total": 1,
	} {
		f := fams[name]
		if f == nil || f.Type != promexp.TypeCounter {
			t.Fatalf("family %s = %+v", name, f)
		}
		if f.Samples[0].Value != want || f.Samples[0].Labels["device"] != "d7" {
			t.Fatalf("family %s sample = %+v", name, f.Samples[0])
		}
	}
	br := fams["medsen_relay_breaker_state"]
	if br == nil || br.Type != promexp.TypeGauge || len(br.Samples) != 3 {
		t.Fatalf("breaker family = %+v", br)
	}
	for _, s := range br.Samples {
		want := 0.0
		if s.Labels["state"] == "open" {
			want = 1
		}
		if s.Value != want {
			t.Fatalf("breaker state %q = %v, want %v", s.Labels["state"], s.Value, want)
		}
		if s.Labels["device"] != "d7" {
			t.Fatalf("breaker sample lost the extra label: %+v", s)
		}
	}
}
