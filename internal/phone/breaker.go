package phone

import (
	"sync"
	"time"
)

// Breaker is a circuit breaker for the phone's live-upload path. Each failed
// upload already costs the user a full transfer plus a timeout; once the
// service has failed several times in a row it is almost certainly still
// down, so the breaker trips and subsequent captures go straight to the
// OfflineQueue spool. After a cooldown one probe upload is admitted
// (half-open); if it succeeds the breaker closes and the backlog flushes.
//
// The zero value is ready to use with the defaults below.
type Breaker struct {
	// Threshold is how many consecutive failures trip the breaker
	// (0 → 3).
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe (0 → 30s).
	Cooldown time.Duration

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool

	// now is a test hook for the clock.
	now func() time.Time
}

// BreakerState is the circuit breaker lifecycle state.
type BreakerState int

const (
	// BreakerClosed passes requests through (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects requests without trying.
	BreakerOpen
	// BreakerHalfOpen admits a single probe request.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

const (
	defaultBreakerThreshold = 3
	defaultBreakerCooldown  = 30 * time.Second
)

func (b *Breaker) threshold() int {
	if b.Threshold > 0 {
		return b.Threshold
	}
	return defaultBreakerThreshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return defaultBreakerCooldown
}

func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

// Allow reports whether a live attempt may proceed. An open breaker whose
// cooldown has elapsed transitions to half-open and admits exactly one probe;
// further calls are rejected until that probe reports Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.clock().Sub(b.openedAt) < b.cooldown() {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default:
		return true
	}
}

// Success records a successful attempt: the breaker closes and the failure
// count resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
}

// Failure records a failed attempt. A half-open probe failure re-opens the
// breaker immediately; in the closed state the breaker trips once Threshold
// consecutive failures accumulate.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.clock()
		b.probing = false
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold() {
			b.state = BreakerOpen
			b.openedAt = b.clock()
		}
	}
}

// State returns the current lifecycle state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
