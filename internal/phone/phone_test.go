package phone

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"medsen/internal/cloud"
	"medsen/internal/csvio"
	"medsen/internal/drbg"
	"medsen/internal/lockin"
	"medsen/internal/microfluidic"
	"medsen/internal/sensor"
)

func testAcquisition(t *testing.T) lockin.Acquisition {
	return testAcquisitionSeeded(t, 81)
}

// testAcquisitionSeeded returns a deterministic acquisition whose bytes vary
// with the seed — submissions now dedup on the payload digest, so a test
// that models N separate captures needs N distinct seeds.
func testAcquisitionSeeded(t *testing.T, seed uint64) lockin.Acquisition {
	t.Helper()
	s := sensor.NewDefault()
	s.Loss = microfluidic.LossModel{Disabled: true}
	sample := microfluidic.NewSample(10, map[microfluidic.Type]float64{
		microfluidic.TypeBloodCell: 300,
	})
	res, err := s.Acquire(sensor.AcquireConfig{Sample: sample, DurationS: 30}, drbg.NewFromSeed(seed))
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	return res.Acquisition
}

func newRelay(t *testing.T) *Relay {
	t.Helper()
	svc, err := cloud.NewService(cloud.ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(svc.Close)
	return &Relay{
		Client: &cloud.Client{BaseURL: ts.URL},
		Uplink: Default4G(),
	}
}

func TestLinkTransferTime(t *testing.T) {
	l := Link{UplinkBps: 1e6, RTT: 50 * time.Millisecond}
	got := l.TransferTime(2e6)
	want := 50*time.Millisecond + 2*time.Second
	if got != want {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
	degenerate := Link{RTT: time.Second}
	if degenerate.TransferTime(100) != time.Second {
		t.Fatal("zero-bandwidth link should cost only RTT")
	}
}

func TestUploadRoundTrip(t *testing.T) {
	relay := newRelay(t)
	var progress []string
	relay.Progress = func(s string) { progress = append(progress, s) }

	acq := testAcquisition(t)
	sub, stats, err := relay.Upload(context.Background(), acq)
	if err != nil {
		t.Fatalf("Upload: %v", err)
	}
	if sub.ID == "" || sub.Report.PeakCount == 0 {
		t.Fatalf("submission = %+v", sub)
	}
	if stats.RawBytes <= stats.CompressedBytes {
		t.Fatalf("compression did not shrink payload: %+v", stats)
	}
	if stats.CompressionRatio <= 1 {
		t.Fatalf("ratio %v", stats.CompressionRatio)
	}
	if stats.SimulatedTransfer <= 0 {
		t.Fatalf("transfer time %v", stats.SimulatedTransfer)
	}
	if len(progress) < 2 {
		t.Fatalf("expected progress feedback, got %v", progress)
	}
}

func TestUploadDoesNotSleepByDefault(t *testing.T) {
	relay := newRelay(t)
	relay.Uplink = Link{UplinkBps: 10, RTT: time.Hour} // absurd link
	acq := testAcquisition(t)
	start := time.Now()
	_, stats, err := relay.Upload(context.Background(), acq)
	if err != nil {
		t.Fatalf("Upload: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("upload slept for %v despite Sleep=false", elapsed)
	}
	if stats.SimulatedTransfer < time.Hour {
		t.Fatalf("simulated transfer %v, want >= RTT", stats.SimulatedTransfer)
	}
}

func TestUploadHonorsContextWhenSleeping(t *testing.T) {
	relay := newRelay(t)
	relay.Uplink = Link{UplinkBps: 1, RTT: time.Hour, Sleep: true}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, _, err := relay.Upload(ctx, testAcquisition(t))
	if err == nil {
		t.Fatal("expected context cancellation")
	}
}

func TestAnalyzeReturnsReport(t *testing.T) {
	relay := newRelay(t)
	report, err := relay.Analyze(context.Background(), testAcquisition(t))
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if report.PeakCount == 0 {
		t.Fatal("empty report")
	}
}

func TestRelayWithoutClient(t *testing.T) {
	r := &Relay{}
	if _, _, err := r.Upload(context.Background(), lockin.Acquisition{}); err == nil {
		t.Fatal("expected error for missing client")
	}
}

func TestUploadAsyncPollsJobToCompletion(t *testing.T) {
	relay := newRelay(t)
	relay.Async = true
	relay.PollInterval = 5 * time.Millisecond
	var progress []string
	relay.Progress = func(s string) { progress = append(progress, s) }

	acq := testAcquisition(t)
	sub, _, err := relay.Upload(context.Background(), acq)
	if err != nil {
		t.Fatalf("async Upload: %v", err)
	}
	if sub.ID == "" || sub.Report.PeakCount == 0 {
		t.Fatalf("async submission = %+v", sub)
	}
	// The async path must produce the same report the sync path does.
	relay.Async = false
	syncSub, _, err := relay.Upload(context.Background(), acq)
	if err != nil {
		t.Fatal(err)
	}
	if syncSub.Report.PeakCount != sub.Report.PeakCount {
		t.Fatalf("async peaks %d != sync peaks %d", sub.Report.PeakCount, syncSub.Report.PeakCount)
	}
	found := false
	for _, p := range progress {
		if strings.Contains(p, "polling") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no polling progress line in %v", progress)
	}
}

// TestRelayMetrics: the phone-side counters track live submissions, failures,
// spooling and backlog flushes, and report the breaker state by name.
func TestRelayMetrics(t *testing.T) {
	client, down := flakyCloud(t)
	relay := &Relay{Client: client, Uplink: Default4G(),
		Breaker: &Breaker{Threshold: 100}} // high threshold: never trips here
	q := &OfflineQueue{Dir: t.TempDir()}
	ctx := context.Background()

	if m := relay.Metrics(); m != (RelayMetrics{BreakerState: "closed"}) {
		t.Fatalf("fresh relay metrics = %+v", m)
	}

	payload, err := csvio.CompressAcquisition(testAcquisitionSeeded(t, 81))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := relay.Submit(ctx, payload); err != nil {
		t.Fatal(err)
	}

	down.Store(true)
	if _, queued, err := relay.SubmitOrSpool(ctx, payload, q); err != nil || !queued {
		t.Fatalf("outage submit: queued=%v err=%v", queued, err)
	}
	down.Store(false)
	// The next live submit flushes the one spooled entry first.
	if _, queued, err := relay.SubmitOrSpool(ctx, payload, q); err != nil || queued {
		t.Fatalf("recovery submit: queued=%v err=%v", queued, err)
	}

	m := relay.Metrics()
	want := RelayMetrics{LiveSubmits: 2, SubmitFailures: 1, Spooled: 1,
		BacklogFlushed: 1, BreakerState: "closed"}
	if m != want {
		t.Fatalf("metrics = %+v, want %+v", m, want)
	}

	// No breaker: the state still reads "closed" rather than empty.
	if s := (&Relay{}).Metrics().BreakerState; s != "closed" {
		t.Fatalf("breakerless state = %q", s)
	}
}

func TestAnalyzeAsyncReturnsReport(t *testing.T) {
	relay := newRelay(t)
	relay.Async = true
	relay.PollInterval = 5 * time.Millisecond
	report, err := relay.Analyze(context.Background(), testAcquisition(t))
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if report.PeakCount == 0 {
		t.Fatal("empty report")
	}
}
