package phone

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"medsen/internal/cloud"
	"medsen/internal/csvio"
	"medsen/internal/faultinject"
	"medsen/internal/lockin"
)

// OfflineQueue is the phone app's store-and-forward buffer: a cellular link
// can drop mid-test, and the (already encrypted) capture must not be lost —
// the patient cannot re-bleed. Failed uploads are persisted as files and
// flushed when connectivity returns. The queue contents are ciphertext; a
// stolen phone learns nothing from them.
type OfflineQueue struct {
	// Dir is the spool directory.
	Dir string
	// FS, when non-nil, replaces the real filesystem — the seam the
	// fault-injection harness uses to exercise spool write failures.
	FS faultinject.FS

	mu sync.Mutex
}

// payloadSuffix marks queued compressed captures. tmpSuffix marks an entry
// still being written (a crash mid-Enqueue leaves one behind; the sweep
// removes it). badSuffix marks an entry parked aside by Flush because it was
// unreadable or permanently rejected — kept for forensics, never re-sent.
const (
	payloadSuffix = ".zip"
	tmpSuffix     = ".tmp"
	badSuffix     = ".bad"
)

func (q *OfflineQueue) fs() faultinject.FS {
	if q.FS != nil {
		return q.FS
	}
	return faultinject.OSFS{}
}

// Enqueue spools one compressed capture and returns its queue entry name.
func (q *OfflineQueue) Enqueue(payload []byte) (string, error) {
	if q.Dir == "" {
		return "", errors.New("phone: queue has no directory")
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.fs().MkdirAll(q.Dir, 0o700); err != nil {
		return "", fmt.Errorf("phone: creating queue dir: %w", err)
	}
	q.sweepStaleLocked()
	next, err := q.nextSeqLocked()
	if err != nil {
		return "", err
	}
	name := fmt.Sprintf("%06d%s", next, payloadSuffix)
	tmp := filepath.Join(q.Dir, name+tmpSuffix)
	if err := q.fs().WriteFile(tmp, payload, 0o600); err != nil {
		return "", fmt.Errorf("phone: spooling: %w", err)
	}
	if err := q.fs().Rename(tmp, filepath.Join(q.Dir, name)); err != nil {
		return "", fmt.Errorf("phone: committing spool entry: %w", err)
	}
	return name, nil
}

// sweepStaleLocked removes *.tmp leftovers from a crash mid-Enqueue. A tmp
// file never reached the rename, so nothing durable is lost by deleting it —
// the capture it held was never acknowledged as spooled.
func (q *OfflineQueue) sweepStaleLocked() {
	entries, err := q.fs().ReadDir(q.Dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), tmpSuffix) {
			_ = q.fs().Remove(filepath.Join(q.Dir, e.Name()))
		}
	}
}

// nextSeqLocked returns one past the highest sequence number present in the
// spool in any form — live (.zip), in-flight (.zip.tmp), or parked
// (.zip.bad). Parked entries must count: reusing their number would let a
// later park rename over an earlier parked capture.
func (q *OfflineQueue) nextSeqLocked() (int, error) {
	entries, err := q.fs().ReadDir(q.Dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 1, nil
		}
		return 0, fmt.Errorf("phone: reading queue: %w", err)
	}
	next := 1
	for _, e := range entries {
		name := strings.TrimSuffix(e.Name(), badSuffix)
		name = strings.TrimSuffix(name, tmpSuffix)
		if !strings.HasSuffix(name, payloadSuffix) {
			continue
		}
		if n, err := strconv.Atoi(strings.TrimSuffix(name, payloadSuffix)); err == nil && n >= next {
			next = n + 1
		}
	}
	return next, nil
}

// Pending lists spooled entries in upload order.
func (q *OfflineQueue) Pending() ([]string, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.listLocked(payloadSuffix)
}

// Parked lists entries Flush has set aside as unreadable or permanently
// rejected, in name order.
func (q *OfflineQueue) Parked() ([]string, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.listLocked(badSuffix)
}

func (q *OfflineQueue) listLocked(suffix string) ([]string, error) {
	if q.Dir == "" {
		return nil, errors.New("phone: queue has no directory")
	}
	entries, err := q.fs().ReadDir(q.Dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("phone: reading queue: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), suffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// permanentUploadError reports whether the service definitively rejected the
// payload itself — retrying the identical bytes can never succeed, so the
// entry should be parked rather than block the queue.
func permanentUploadError(err error) bool {
	return errors.Is(err, cloud.ErrInvalidRequest) ||
		errors.Is(err, cloud.ErrUnprocessable) ||
		errors.Is(err, cloud.ErrPayloadTooLarge)
}

// permanentItemCode is permanentUploadError for a batch item's error code.
func permanentItemCode(code string) bool {
	switch code {
	case cloud.CodeInvalidRequest, cloud.CodeUnprocessable, cloud.CodePayloadTooLarge:
		return true
	}
	return false
}

// flushBatchSize is how many spooled entries one flush round trip carries.
// Well under the service's batch-item cap, so a flush is never rejected for
// size, and small enough that one response envelope stays cheap to buffer.
const flushBatchSize = 16

// Flush uploads spooled entries in order, coalescing up to flushBatchSize of
// them per POST /api/v1/analyses:batch round trip — a backlog accumulated
// during an outage ships with one HTTP request and one admission decision per
// batch instead of per capture — and deletes each on success. An entry that
// cannot be read back or that the service permanently rejects (per-item
// verdict) is parked aside with a .bad suffix — one corrupt spool file must
// not wedge every capture behind it — and flushing continues. Transient
// failures (transport errors, 5xx, a transient per-item verdict) stop the
// flush as before: connectivity is presumably still bad, and spool order is
// preserved. It reports how many entries were shipped.
func (q *OfflineQueue) Flush(ctx context.Context, client *cloud.Client) (int, error) {
	if client == nil {
		return 0, errors.New("phone: flush needs a cloud client")
	}
	names, err := q.Pending()
	if err != nil {
		return 0, err
	}
	flushed := 0
	for len(names) > 0 {
		chunk := names
		if len(chunk) > flushBatchSize {
			chunk = chunk[:flushBatchSize]
		}
		names = names[len(chunk):]

		// Read the chunk back, parking entries the disk refuses to return.
		items := make([]cloud.BatchSubmission, 0, len(chunk))
		itemNames := make([]string, 0, len(chunk))
		for _, name := range chunk {
			payload, err := q.fs().ReadFile(filepath.Join(q.Dir, name))
			if err != nil {
				if perr := q.park(name); perr != nil {
					return flushed, fmt.Errorf("phone: parking unreadable entry %s: %w", name, perr)
				}
				continue
			}
			// The content-derived key makes replays harmless: an entry the
			// service already analyzed (a crash between the upload and the
			// spool-file removal, or an ambiguous torn response) dedups to the
			// original analysis instead of double-counting the capture.
			items = append(items, cloud.BatchSubmission{
				Payload:        payload,
				IdempotencyKey: cloud.CaptureKey(payload),
			})
			itemNames = append(itemNames, name)
		}
		if len(items) == 0 {
			continue
		}
		resp, err := client.SubmitBatch(ctx, items)
		if err != nil {
			return flushed, fmt.Errorf("phone: flushing batch of %d: %w", len(items), err)
		}
		var transientErr error
		for _, res := range resp.Results {
			if res.Index < 0 || res.Index >= len(itemNames) {
				continue
			}
			name := itemNames[res.Index]
			switch {
			case res.OK():
				if err := q.fs().Remove(filepath.Join(q.Dir, name)); err != nil {
					return flushed, fmt.Errorf("phone: removing flushed entry %s: %w", name, err)
				}
				flushed++
			case res.Error != nil && permanentItemCode(res.Error.Code):
				if perr := q.park(name); perr != nil {
					return flushed, fmt.Errorf("phone: parking rejected entry %s: %w", name, perr)
				}
			default:
				// Transient per-item verdict (duplicate in flight, internal
				// error): the entry stays spooled for the next flush.
				if transientErr == nil {
					code := cloud.CodeInternal
					if res.Error != nil {
						code = res.Error.Code
					}
					transientErr = fmt.Errorf("phone: flushing %s: item deferred (%s)", name, code)
				}
			}
		}
		if transientErr != nil {
			return flushed, transientErr
		}
	}
	return flushed, nil
}

// park renames a spool entry aside with the .bad suffix.
func (q *OfflineQueue) park(name string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	path := filepath.Join(q.Dir, name)
	return q.fs().Rename(path, path+badSuffix)
}

// SubmitOrSpool ships an already compressed payload, spooling it when the
// live path is unavailable. When the relay has a Breaker, a tripped breaker
// skips the live attempt entirely (no transfer, no timeout — straight to the
// spool), and a successful attempt closes the breaker and flushes the
// backlog best-effort.
func (r *Relay) SubmitOrSpool(ctx context.Context, payload []byte, q *OfflineQueue) (sub cloud.SubmitResponse, queued bool, err error) {
	if q == nil {
		return cloud.SubmitResponse{}, false, errors.New("phone: nil queue")
	}
	live := r.Client != nil
	if live && r.Breaker != nil && !r.Breaker.Allow() {
		r.progress("circuit open, spooling capture")
		live = false
	}
	if live {
		sub, err = r.Submit(ctx, payload)
		if err == nil {
			if r.Breaker != nil {
				r.Breaker.Success()
				if n, ferr := q.Flush(ctx, r.Client); ferr == nil && n > 0 {
					atomic.AddInt64(&r.backlogFlushed, int64(n))
					r.progress("connectivity restored, flushed %d spooled captures", n)
				}
			}
			return sub, false, nil
		}
		if r.Breaker != nil {
			r.Breaker.Failure()
		}
		r.progress("upload failed (%v), spooling capture", err)
	}
	name, qErr := q.Enqueue(payload)
	if qErr != nil {
		return cloud.SubmitResponse{}, false, fmt.Errorf("phone: upload failed and spooling failed: %w", qErr)
	}
	atomic.AddInt64(&r.spooled, 1)
	r.progress("capture spooled as %s", name)
	return cloud.SubmitResponse{}, true, nil
}

// UploadOrQueue attempts a live upload; on a transport or service failure it
// spools the payload instead and reports queued=true. The measurement is
// never lost.
func (r *Relay) UploadOrQueue(ctx context.Context, acq lockin.Acquisition, q *OfflineQueue) (sub cloud.SubmitResponse, queued bool, err error) {
	if q == nil {
		return cloud.SubmitResponse{}, false, errors.New("phone: nil queue")
	}
	payload, err := csvio.CompressAcquisition(acq)
	if err != nil {
		return cloud.SubmitResponse{}, false, err
	}
	if _, err := r.Uplink.TransferContext(ctx, len(payload)); err != nil {
		return cloud.SubmitResponse{}, false, err
	}
	return r.SubmitOrSpool(ctx, payload, q)
}
