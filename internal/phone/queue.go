package phone

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"medsen/internal/cloud"
	"medsen/internal/csvio"
	"medsen/internal/lockin"
)

// OfflineQueue is the phone app's store-and-forward buffer: a cellular link
// can drop mid-test, and the (already encrypted) capture must not be lost —
// the patient cannot re-bleed. Failed uploads are persisted as files and
// flushed when connectivity returns. The queue contents are ciphertext; a
// stolen phone learns nothing from them.
type OfflineQueue struct {
	// Dir is the spool directory.
	Dir string

	mu sync.Mutex
}

// payloadSuffix marks queued compressed captures.
const payloadSuffix = ".zip"

// Enqueue spools one compressed capture and returns its queue entry name.
func (q *OfflineQueue) Enqueue(payload []byte) (string, error) {
	if q.Dir == "" {
		return "", errors.New("phone: queue has no directory")
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := os.MkdirAll(q.Dir, 0o700); err != nil {
		return "", fmt.Errorf("phone: creating queue dir: %w", err)
	}
	next, err := q.nextSeqLocked()
	if err != nil {
		return "", err
	}
	name := fmt.Sprintf("%06d%s", next, payloadSuffix)
	tmp := filepath.Join(q.Dir, name+".tmp")
	if err := os.WriteFile(tmp, payload, 0o600); err != nil {
		return "", fmt.Errorf("phone: spooling: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(q.Dir, name)); err != nil {
		return "", fmt.Errorf("phone: committing spool entry: %w", err)
	}
	return name, nil
}

// nextSeqLocked returns one past the highest spooled sequence number.
func (q *OfflineQueue) nextSeqLocked() (int, error) {
	entries, err := q.pendingLocked()
	if err != nil {
		return 0, err
	}
	next := 1
	for _, name := range entries {
		if n, err := strconv.Atoi(strings.TrimSuffix(name, payloadSuffix)); err == nil && n >= next {
			next = n + 1
		}
	}
	return next, nil
}

// Pending lists spooled entries in upload order.
func (q *OfflineQueue) Pending() ([]string, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pendingLocked()
}

func (q *OfflineQueue) pendingLocked() ([]string, error) {
	if q.Dir == "" {
		return nil, errors.New("phone: queue has no directory")
	}
	entries, err := os.ReadDir(q.Dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("phone: reading queue: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), payloadSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Flush uploads spooled entries in order through the client, deleting each
// on success. It stops at the first failure (connectivity is presumably
// still bad) and reports how many entries were shipped.
func (q *OfflineQueue) Flush(ctx context.Context, client *cloud.Client) (int, error) {
	if client == nil {
		return 0, errors.New("phone: flush needs a cloud client")
	}
	names, err := q.Pending()
	if err != nil {
		return 0, err
	}
	flushed := 0
	for _, name := range names {
		path := filepath.Join(q.Dir, name)
		payload, err := os.ReadFile(path)
		if err != nil {
			return flushed, fmt.Errorf("phone: reading spool entry %s: %w", name, err)
		}
		if _, err := client.SubmitCompressed(ctx, payload); err != nil {
			return flushed, fmt.Errorf("phone: flushing %s: %w", name, err)
		}
		if err := os.Remove(path); err != nil {
			return flushed, fmt.Errorf("phone: removing flushed entry %s: %w", name, err)
		}
		flushed++
	}
	return flushed, nil
}

// UploadOrQueue attempts a live upload; on a transport or service failure it
// spools the payload instead and reports queued=true. The measurement is
// never lost.
func (r *Relay) UploadOrQueue(ctx context.Context, acq lockin.Acquisition, q *OfflineQueue) (sub cloud.SubmitResponse, queued bool, err error) {
	if q == nil {
		return cloud.SubmitResponse{}, false, errors.New("phone: nil queue")
	}
	payload, err := csvio.CompressAcquisition(acq)
	if err != nil {
		return cloud.SubmitResponse{}, false, err
	}
	if _, err := r.Uplink.TransferContext(ctx, len(payload)); err != nil {
		return cloud.SubmitResponse{}, false, err
	}
	if r.Client != nil {
		sub, err = r.Submit(ctx, payload)
		if err == nil {
			return sub, false, nil
		}
		r.progress("upload failed (%v), spooling capture", err)
	}
	name, qErr := q.Enqueue(payload)
	if qErr != nil {
		return cloud.SubmitResponse{}, false, fmt.Errorf("phone: upload failed and spooling failed: %w", qErr)
	}
	r.progress("capture spooled as %s", name)
	return cloud.SubmitResponse{}, true, nil
}
