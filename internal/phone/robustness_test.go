package phone

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"medsen/internal/cloud"
	"medsen/internal/csvio"
	"medsen/internal/faultinject"
)

// TestBreakerTransitions walks the closed → open → half-open → open/closed
// lifecycle with a fake clock.
func TestBreakerTransitions(t *testing.T) {
	clock := time.Unix(1000, 0)
	b := &Breaker{Threshold: 2, Cooldown: 10 * time.Second, now: func() time.Time { return clock }}

	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("fresh breaker must be closed and allowing")
	}
	b.Failure()
	if !b.Allow() {
		t.Fatal("one failure below threshold must not trip")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker within cooldown must reject")
	}

	// Cooldown elapses: exactly one probe is admitted.
	clock = clock.Add(11 * time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed: probe must be admitted")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller must be rejected while the probe is in flight")
	}

	// Failed probe re-opens immediately.
	b.Failure()
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatalf("failed probe: state = %v, want open and rejecting", b.State())
	}

	// Next cooldown, successful probe closes.
	clock = clock.Add(11 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe must be admitted")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatalf("successful probe: state = %v, want closed", b.State())
	}
	// A single failure after recovery must not trip (counter was reset).
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("failure counter survived the reset")
	}
}

// TestEnqueueSweepsStaleTmp: a *.tmp leftover from a crash mid-Enqueue is
// removed by the next Enqueue, and never blocks or corrupts the sequence.
func TestEnqueueSweepsStaleTmp(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "000001.zip.tmp"), []byte("torn"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "000002.zip"), []byte("live"), 0o600); err != nil {
		t.Fatal(err)
	}
	q := &OfflineQueue{Dir: dir}
	name, err := q.Enqueue([]byte("new"))
	if err != nil {
		t.Fatal(err)
	}
	if name != "000003.zip" {
		t.Fatalf("enqueued as %q, want 000003.zip", name)
	}
	if _, err := os.Stat(filepath.Join(dir, "000001.zip.tmp")); !os.IsNotExist(err) {
		t.Fatalf("stale tmp not swept: %v", err)
	}
	names, err := q.Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "000002.zip" || names[1] != "000003.zip" {
		t.Fatalf("pending = %v", names)
	}
}

// liveCloud spins up a real analysis service.
func liveCloud(t *testing.T) *cloud.Client {
	t.Helper()
	svc, err := cloud.NewService(cloud.ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(svc.Close)
	return &cloud.Client{BaseURL: ts.URL}
}

// TestFlushParksCorruptEntry: one undecodable spool file must be parked with
// a .bad suffix, not wedge the captures behind it.
func TestFlushParksCorruptEntry(t *testing.T) {
	client := liveCloud(t)
	q := &OfflineQueue{Dir: t.TempDir()}
	payload, err := csvio.CompressAcquisition(testAcquisition(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue(payload); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue([]byte("not a zip at all")); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue(payload); err != nil {
		t.Fatal(err)
	}

	n, err := q.Flush(context.Background(), client)
	if err != nil {
		t.Fatalf("flush: %v", err)
	}
	if n != 2 {
		t.Fatalf("flushed %d, want 2", n)
	}
	if names, _ := q.Pending(); len(names) != 0 {
		t.Fatalf("spool not drained: %v", names)
	}
	parked, err := q.Parked()
	if err != nil {
		t.Fatal(err)
	}
	if len(parked) != 1 || parked[0] != "000002.zip.bad" {
		t.Fatalf("parked = %v, want [000002.zip.bad]", parked)
	}
	// The parked name keeps owning its sequence number: a new capture must
	// not recycle it (a later park would overwrite the forensic file).
	if name, err := q.Enqueue(payload); err != nil || name != "000003.zip" {
		t.Fatalf("post-park enqueue = %q, %v; want 000003.zip", name, err)
	}
}

// TestFlushParksUnreadableEntry: a spool entry the disk refuses to read back
// is parked, and the rest still ships.
func TestFlushParksUnreadableEntry(t *testing.T) {
	client := liveCloud(t)
	payload, err := csvio.CompressAcquisition(testAcquisition(t))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	seed := &OfflineQueue{Dir: dir}
	for i := 0; i < 2; i++ {
		if _, err := seed.Enqueue(payload); err != nil {
			t.Fatal(err)
		}
	}
	// The first ReadFile (entry 000001) fails; everything after succeeds.
	q := &OfflineQueue{Dir: dir, FS: faultinject.NewFS(nil, faultinject.FSConfig{
		Seed: 5, ReadErrRate: 1, MaxFaults: 1,
	})}
	n, err := q.Flush(context.Background(), client)
	if err != nil {
		t.Fatalf("flush: %v", err)
	}
	if n != 1 {
		t.Fatalf("flushed %d, want 1", n)
	}
	parked, err := q.Parked()
	if err != nil {
		t.Fatal(err)
	}
	if len(parked) != 1 || parked[0] != "000001.zip.bad" {
		t.Fatalf("parked = %v, want [000001.zip.bad]", parked)
	}
}

// TestSubmitOrSpoolBreaker: repeated upload failures trip the breaker so
// later captures spool without touching the network, and a successful probe
// after the cooldown closes it and flushes the backlog.
func TestSubmitOrSpoolBreaker(t *testing.T) {
	svc, err := cloud.NewService(cloud.ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var down atomic.Bool
	var requests atomic.Int32
	inner := svc.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		if down.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	t.Cleanup(svc.Close)

	clock := time.Unix(2000, 0)
	breaker := &Breaker{Threshold: 2, Cooldown: 10 * time.Second, now: func() time.Time { return clock }}
	relay := &Relay{Client: &cloud.Client{BaseURL: ts.URL}, Breaker: breaker}
	q := &OfflineQueue{Dir: t.TempDir()}
	// Four distinct captures (distinct seeds): identical payloads would
	// dedup server-side into one analysis once the backlog flushes.
	payloads := make([][]byte, 4)
	for i := range payloads {
		p, err := csvio.CompressAcquisition(testAcquisitionSeeded(t, 81+uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		payloads[i] = p
	}
	ctx := context.Background()

	down.Store(true)
	for i := 0; i < 2; i++ {
		_, queued, err := relay.SubmitOrSpool(ctx, payloads[i], q)
		if err != nil || !queued {
			t.Fatalf("outage submit %d: queued=%v err=%v", i, queued, err)
		}
	}
	if breaker.State() != BreakerOpen {
		t.Fatalf("breaker = %v after %d failures, want open", breaker.State(), 2)
	}

	// Tripped: the next capture spools without a network attempt.
	before := requests.Load()
	_, queued, err := relay.SubmitOrSpool(ctx, payloads[2], q)
	if err != nil || !queued {
		t.Fatalf("tripped submit: queued=%v err=%v", queued, err)
	}
	if requests.Load() != before {
		t.Fatal("tripped breaker still hit the network")
	}
	if names, _ := q.Pending(); len(names) != 3 {
		t.Fatalf("pending = %v, want 3 spooled captures", names)
	}

	// Service recovers, cooldown elapses: the probe succeeds, the breaker
	// closes, and the backlog flushes.
	down.Store(false)
	clock = clock.Add(11 * time.Second)
	sub, queued, err := relay.SubmitOrSpool(ctx, payloads[3], q)
	if err != nil || queued {
		t.Fatalf("recovery submit: queued=%v err=%v", queued, err)
	}
	if sub.ID == "" {
		t.Fatal("recovery submit returned no analysis id")
	}
	if breaker.State() != BreakerClosed {
		t.Fatalf("breaker = %v after recovery, want closed", breaker.State())
	}
	if names, _ := q.Pending(); len(names) != 0 {
		t.Fatalf("backlog not flushed on recovery: %v", names)
	}
	list, err := relay.Client.ListAnalyses(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 4 {
		t.Fatalf("cloud has %d analyses, want 4 (probe + 3 flushed)", len(list))
	}
}
