// Package microfluidic simulates the MedSen microfluidic channel: the PDMS
// measurement pore of §III-C, the particle populations (blood cells and the
// synthetic password beads of §V), the pump-driven flow, and the particle
// loss mechanisms (inlet sedimentation and wall adsorption) the paper
// identifies as the cause of the count deficits in Figs. 12 and 13.
//
// The simulator's single product is a stream of Transit events — which
// particle type crossed the sensing region, when, and how fast — which the
// electrode model turns into voltage waveforms. This is exactly the
// information the physical channel delivers to the electrodes, so every
// downstream code path (encryption, peak analysis, authentication) is
// exercised as in the real device.
package microfluidic

import (
	"fmt"
	"math"
	"sort"

	"medsen/internal/drbg"
)

// Type identifies a particle population. The paper's experiments use human
// blood cells plus two synthetic bead sizes (7.8 µm and 3.58 µm, §VII).
type Type int

// Particle types. Bead358 is the amplitude reference: blood cells present
// roughly twice its peak amplitude and Bead780 roughly four times (§VI-B).
const (
	TypeBloodCell Type = iota + 1
	TypeBead358
	TypeBead780
)

// String returns a short human-readable particle name.
func (t Type) String() string {
	switch t {
	case TypeBloodCell:
		return "blood-cell"
	case TypeBead358:
		return "bead-3.58um"
	case TypeBead780:
		return "bead-7.8um"
	default:
		return fmt.Sprintf("particle(%d)", int(t))
	}
}

// allTypes is the closed particle-type enum in stable (ascending) order.
// NumTypes and the array-backed properties table are sized from it.
var allTypes = [...]Type{TypeBloodCell, TypeBead358, TypeBead780}

// NumTypes is the number of supported particle types.
const NumTypes = 3

// AllTypes lists every supported particle type in a stable order. The
// returned slice is a fresh copy; callers may keep or mutate it. Hot paths
// that only iterate should prefer a fixed loop over TypeBloodCell..Bead780
// (see controller.nearestTypeByAmplitude) to avoid the allocation.
func AllTypes() []Type {
	out := make([]Type, len(allTypes))
	copy(out, allTypes[:])
	return out
}

// TypeFromName parses the String form of a particle type (the wire format
// used by the cloud API).
func TypeFromName(name string) (Type, error) {
	for _, t := range AllTypes() {
		if t.String() == name {
			return t, nil
		}
	}
	return 0, fmt.Errorf("microfluidic: unknown particle type %q", name)
}

// Properties captures the physical and dielectric parameters of a particle
// type that the electrode model consumes.
type Properties struct {
	// Name is a human-readable label.
	Name string
	// DiameterUm is the particle diameter in micrometers.
	DiameterUm float64
	// BaseAmplitude is the fractional impedance drop the particle causes
	// at low excitation frequency (relative to baseline; 0.003 = 0.3%).
	BaseAmplitude float64
	// RolloffHz is the β-dispersion corner frequency: above it the
	// particle's membrane admits the field and the measured amplitude
	// declines. Zero means no roll-off (solid dielectric beads).
	RolloffHz float64
	// SettlingRate scales how quickly the population sediments out of
	// the inlet well (per hour). Denser/larger particles settle faster.
	SettlingRate float64
	// AdsorptionFraction is the fraction of particles lost to channel
	// wall adsorption before reaching the sensor.
	AdsorptionFraction float64
}

// propertiesTable holds the calibrated per-type parameters, indexed by Type
// (an array rather than a map: PropertiesOf sits inside the per-pulse loops
// of the sensor and controller, where a map lookup per call is measurable).
// The amplitude ratios (1× / 2× / 4×) and the ≥2 MHz blood-cell roll-off
// reproduce the spectra of Fig. 15 and the clusters of Fig. 16.
var propertiesTable = [NumTypes + 1]Properties{
	TypeBloodCell: {
		Name:               "blood-cell",
		DiameterUm:         6.2,
		BaseAmplitude:      0.0060,
		RolloffHz:          2.4e6,
		SettlingRate:       0.10,
		AdsorptionFraction: 0.03,
	},
	TypeBead358: {
		Name:               "bead-3.58um",
		DiameterUm:         3.58,
		BaseAmplitude:      0.0030,
		RolloffHz:          0,
		SettlingRate:       0.22,
		AdsorptionFraction: 0.06,
	},
	TypeBead780: {
		Name:               "bead-7.8um",
		DiameterUm:         7.8,
		BaseAmplitude:      0.0120,
		RolloffHz:          0,
		SettlingRate:       0.35,
		AdsorptionFraction: 0.08,
	},
}

// PropertiesOf returns the calibrated properties for a particle type. It
// panics for unknown types: particle types are a closed enum and an unknown
// value marks a programming error, not a runtime condition.
func PropertiesOf(t Type) Properties {
	if t < TypeBloodCell || t > TypeBead780 {
		panic(fmt.Sprintf("microfluidic: unknown particle type %d", int(t)))
	}
	return propertiesTable[t]
}

// AmplitudeAt returns the fractional impedance drop this particle type
// produces at the given excitation frequency, implementing the single-pole
// β-dispersion roll-off blood cells exhibit above ~2 MHz (Fig. 15a).
func (p Properties) AmplitudeAt(freqHz float64) float64 {
	if p.RolloffHz <= 0 || freqHz <= 0 {
		return p.BaseAmplitude
	}
	ratio := freqHz / p.RolloffHz
	return p.BaseAmplitude / math.Sqrt(1+ratio*ratio)
}

// Channel describes the microfluidic channel geometry and pump setting of
// §III-C and §VI-D.
type Channel struct {
	// WidthUm and HeightUm are the measurement pore cross-section
	// (30 µm × 20 µm in the fabricated device).
	WidthUm  float64
	HeightUm float64
	// PoreLengthUm is the measurement pore length (500 µm).
	PoreLengthUm float64
	// FlowRateUlMin is the pump rate in µL/min (0.08 in the paper's
	// experiments; §VII computes an actual rate of 0.081 µL/min).
	FlowRateUlMin float64
}

// DefaultChannel returns the fabricated device's geometry and pump setting.
func DefaultChannel() Channel {
	return Channel{
		WidthUm:       30,
		HeightUm:      20,
		PoreLengthUm:  500,
		FlowRateUlMin: 0.08,
	}
}

// Validate checks the channel parameters.
func (c Channel) Validate() error {
	if c.WidthUm <= 0 || c.HeightUm <= 0 || c.PoreLengthUm <= 0 {
		return fmt.Errorf("microfluidic: non-positive channel dimensions %+v", c)
	}
	if c.FlowRateUlMin <= 0 {
		return fmt.Errorf("microfluidic: non-positive flow rate %v", c.FlowRateUlMin)
	}
	return nil
}

// VelocityUmS returns the mean fluid velocity in the pore in µm/s:
// Q / (W·H). At the default settings this is ≈ 2.2 mm/s, giving the ~20 ms
// transit over a 45 µm electrode span reported in §VII-A.
func (c Channel) VelocityUmS() float64 {
	area := c.WidthUm * c.HeightUm // µm²
	if area <= 0 {
		return 0
	}
	// 1 µL = 1e9 µm³; per minute → per second.
	return c.FlowRateUlMin * 1e9 / 60 / area
}

// Sample is a fluid sample characterized by per-type particle concentrations.
type Sample struct {
	// VolumeUl is the sample volume in µL (the paper draws < 10 µL).
	VolumeUl float64
	// ConcentrationPerUl maps particle type to particles per µL.
	ConcentrationPerUl map[Type]float64
}

// NewSample builds a sample, copying the concentration map so callers retain
// ownership of theirs.
func NewSample(volumeUl float64, conc map[Type]float64) Sample {
	c := make(map[Type]float64, len(conc))
	for k, v := range conc {
		if v > 0 {
			c[k] = v
		}
	}
	return Sample{VolumeUl: volumeUl, ConcentrationPerUl: c}
}

// Validate checks sample parameters.
func (s Sample) Validate() error {
	if s.VolumeUl <= 0 {
		return fmt.Errorf("microfluidic: non-positive sample volume %v", s.VolumeUl)
	}
	for t, c := range s.ConcentrationPerUl {
		if c < 0 {
			return fmt.Errorf("microfluidic: negative concentration %v for %v", c, t)
		}
	}
	return nil
}

// ExpectedCount returns the nominal number of particles of the given type in
// the sample (concentration × volume), the "estimated count" axis of
// Figs. 12 and 13.
func (s Sample) ExpectedCount(t Type) float64 {
	return s.ConcentrationPerUl[t] * s.VolumeUl
}

// TotalConcentration sums concentrations over all particle types.
func (s Sample) TotalConcentration() float64 {
	sum := 0.0
	for _, c := range s.ConcentrationPerUl {
		sum += c
	}
	return sum
}

// Mix combines two samples (e.g. the patient's blood and the cyto-coded
// password bead suspension, §V) and returns the pooled sample. Volumes add;
// concentrations are volume-weighted.
func Mix(a, b Sample) Sample {
	total := a.VolumeUl + b.VolumeUl
	if total <= 0 {
		return Sample{}
	}
	conc := make(map[Type]float64)
	for t, c := range a.ConcentrationPerUl {
		conc[t] += c * a.VolumeUl / total
	}
	for t, c := range b.ConcentrationPerUl {
		conc[t] += c * b.VolumeUl / total
	}
	return Sample{VolumeUl: total, ConcentrationPerUl: conc}
}

// Transit is one particle crossing of the sensing region.
type Transit struct {
	// Type is the particle population the crosser belongs to.
	Type Type
	// EntryS is the time (seconds from acquisition start) the particle
	// enters the sensing region.
	EntryS float64
	// VelocityUmS is the particle's speed through the pore. Individual
	// particles deviate a little from the mean fluid velocity because of
	// their radial position in the parabolic flow profile.
	VelocityUmS float64
	// SizeScale captures the particle's individual size relative to its
	// population nominal (real cells and beads have ~10% size spread);
	// it scales the impedance drop. Zero is treated as 1 (nominal).
	SizeScale float64
}

// EffectiveSizeScale returns SizeScale with the zero value mapped to 1.
func (t Transit) EffectiveSizeScale() float64 {
	if t.SizeScale <= 0 {
		return 1
	}
	return t.SizeScale
}

// LossModel aggregates the §VII-B particle loss mechanisms: beads sinking to
// the bottom of the inlet well over time, and beads adsorbing to the channel
// walls. Both cause the measured counts of Figs. 12/13 to fall below the
// estimated counts, increasingly so at longer runtimes.
type LossModel struct {
	// Disabled turns all losses off (ideal transport), useful for
	// encryption-roundtrip tests where exact counts matter.
	Disabled bool
	// SedimentationScale multiplies every type's SettlingRate; 1 is the
	// calibrated default.
	SedimentationScale float64
	// AdsorptionScale multiplies every type's AdsorptionFraction.
	AdsorptionScale float64
}

// DefaultLossModel returns the calibrated loss model.
func DefaultLossModel() LossModel {
	return LossModel{SedimentationScale: 1, AdsorptionScale: 1}
}

// efficiency returns the fraction of the nominal arrival rate that survives
// to the sensor at time t (seconds) for the given particle type.
func (l LossModel) efficiency(p Properties, tS float64) float64 {
	if l.Disabled {
		return 1
	}
	sed := math.Exp(-p.SettlingRate * l.SedimentationScale * tS / 3600)
	ads := 1 - p.AdsorptionFraction*l.AdsorptionScale
	if ads < 0 {
		ads = 0
	}
	return sed * ads
}

// GenerateConfig bundles the inputs to transit generation.
type GenerateConfig struct {
	Channel Channel
	Sample  Sample
	// DurationS is the acquisition length in seconds.
	DurationS float64
	Loss      LossModel
	// VelocityJitter is the relative standard deviation of per-particle
	// velocity around the mean (parabolic-profile spread). Default 0.08.
	VelocityJitter float64
	// SizeJitter is the relative standard deviation of per-particle
	// size (amplitude) around the population nominal. Default 0.10.
	SizeJitter float64
}

// GenerateTransits simulates particle arrivals at the sensing region over
// the acquisition window as a thinned Poisson process per particle type:
// base rate = concentration × flow rate, thinned by the time-dependent loss
// efficiency. The returned transits are sorted by entry time.
func GenerateTransits(cfg GenerateConfig, rng *drbg.DRBG) ([]Transit, error) {
	if err := cfg.Channel.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Sample.Validate(); err != nil {
		return nil, err
	}
	if cfg.DurationS <= 0 {
		return nil, fmt.Errorf("microfluidic: non-positive duration %v", cfg.DurationS)
	}
	if rng == nil {
		return nil, fmt.Errorf("microfluidic: nil rng")
	}
	jitter := cfg.VelocityJitter
	if jitter == 0 {
		jitter = 0.08
	}
	sizeJitter := cfg.SizeJitter
	if sizeJitter == 0 {
		sizeJitter = 0.10
	}
	meanV := cfg.Channel.VelocityUmS()

	flowPerSec := cfg.Channel.FlowRateUlMin / 60 // µL/s
	// Stable iteration order over the concentration map keeps generation
	// deterministic for a fixed seed. The type count is tiny (the enum has
	// NumTypes members), so an insertion sort over a stack buffer replaces
	// the closure-allocating sort.Slice of the original.
	var typesBuf [NumTypes + 1]Type
	types := typesBuf[:0]
	for t := range cfg.Sample.ConcentrationPerUl {
		types = append(types, t)
	}
	for i := 1; i < len(types); i++ {
		for j := i; j > 0 && types[j] < types[j-1]; j-- {
			types[j], types[j-1] = types[j-1], types[j]
		}
	}

	// Pre-size the transit slice from the expected arrival count (rate ×
	// window, before thinning) plus CLT headroom, so the append loop almost
	// never regrows. Exact length is set by the draws themselves.
	expected := 0.0
	for _, t := range types {
		if conc := cfg.Sample.ConcentrationPerUl[t]; conc > 0 {
			expected += conc * flowPerSec * cfg.DurationS
		}
	}
	transits := make([]Transit, 0, int(expected+4*math.Sqrt(expected))+16)

	for _, t := range types {
		conc := cfg.Sample.ConcentrationPerUl[t]
		if conc <= 0 {
			continue
		}
		props := PropertiesOf(t)
		baseRate := conc * flowPerSec // particles per second entering pore
		if baseRate <= 0 {
			continue
		}
		// Poisson thinning: draw from the homogeneous process at the
		// base rate, keep each arrival with probability efficiency(t).
		tNow := 0.0
		for {
			tNow += rng.ExpFloat64() / baseRate
			if tNow >= cfg.DurationS {
				break
			}
			if rng.Float64() > cfg.Loss.efficiency(props, tNow) {
				continue
			}
			v := meanV * (1 + jitter*rng.NormFloat64())
			if v < meanV*0.2 {
				v = meanV * 0.2
			}
			size := 1 + sizeJitter*rng.NormFloat64()
			if size < 0.7 {
				size = 0.7
			}
			if size > 1.4 {
				size = 1.4
			}
			transits = append(transits, Transit{
				Type: t, EntryS: tNow, VelocityUmS: v, SizeScale: size,
			})
		}
	}
	// Concrete sort.Interface instead of sort.Slice: same pdqsort, same
	// comparison/swap sequence (ties are impossible — entry times are
	// distinct float64 draws), without the per-call closure and reflection
	// swapper allocations.
	sort.Sort(transitsByEntry(transits))
	return transits, nil
}

// transitsByEntry sorts transits by ascending entry time.
type transitsByEntry []Transit

func (s transitsByEntry) Len() int           { return len(s) }
func (s transitsByEntry) Less(i, j int) bool { return s[i].EntryS < s[j].EntryS }
func (s transitsByEntry) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// CountByType tallies transits per particle type.
func CountByType(transits []Transit) map[Type]int {
	out := make(map[Type]int)
	for _, tr := range transits {
		out[tr.Type]++
	}
	return out
}
