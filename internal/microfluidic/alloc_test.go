package microfluidic

import (
	"testing"

	"medsen/internal/drbg"
)

// GenerateTransits feeds every acquisition on the local-diagnostic path;
// with the pre-sized transit slice, stack-buffered type order and concrete
// sort it should allocate only the result (DESIGN.md §6).
func TestGenerateTransitsAllocBound(t *testing.T) {
	rng := drbg.NewFromSeed(7)
	cfg := GenerateConfig{
		Channel: DefaultChannel(),
		Sample: NewSample(10, map[Type]float64{
			TypeBloodCell: 200,
			TypeBead358:   120,
		}),
		DurationS: 10,
		Loss:      DefaultLossModel(),
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := GenerateTransits(cfg, rng); err != nil {
			t.Fatal(err)
		}
	})
	// One allocation for the pre-sized result slice; headroom of one more
	// for the rare resize when the draw lands far above the expected count.
	if allocs > 2 {
		t.Fatalf("GenerateTransits: %v allocs/run, want <= 2", allocs)
	}
}
