package microfluidic

import (
	"math"
	"testing"
	"testing/quick"

	"medsen/internal/drbg"
)

func TestTypeString(t *testing.T) {
	tests := []struct {
		typ  Type
		want string
	}{
		{TypeBloodCell, "blood-cell"},
		{TypeBead358, "bead-3.58um"},
		{TypeBead780, "bead-7.8um"},
		{Type(99), "particle(99)"},
	}
	for _, tc := range tests {
		if got := tc.typ.String(); got != tc.want {
			t.Errorf("Type(%d).String() = %q, want %q", tc.typ, got, tc.want)
		}
	}
}

func TestPropertiesOfKnownTypes(t *testing.T) {
	for _, typ := range AllTypes() {
		p := PropertiesOf(typ)
		if p.DiameterUm <= 0 {
			t.Errorf("%v: non-positive diameter", typ)
		}
		if p.BaseAmplitude <= 0 {
			t.Errorf("%v: non-positive base amplitude", typ)
		}
	}
}

func TestPropertiesOfUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown type")
		}
	}()
	PropertiesOf(Type(42))
}

func TestAmplitudeRatiosMatchPaper(t *testing.T) {
	// §VI-B: blood ≈ 2× and 7.8 µm beads ≈ 4× the 3.58 µm bead amplitude
	// at low frequency.
	ref := PropertiesOf(TypeBead358).AmplitudeAt(500e3)
	blood := PropertiesOf(TypeBloodCell).AmplitudeAt(500e3)
	big := PropertiesOf(TypeBead780).AmplitudeAt(500e3)
	if r := blood / ref; r < 1.6 || r > 2.4 {
		t.Errorf("blood/3.58 amplitude ratio = %v, want ~2", r)
	}
	if r := big / ref; r < 3.5 || r > 4.5 {
		t.Errorf("7.8/3.58 amplitude ratio = %v, want ~4", r)
	}
}

func TestBloodCellRollsOffAboveTwoMHz(t *testing.T) {
	// Fig. 15a: at ≥ 2 MHz blood cells respond with lower impedance than
	// at low frequency, while solid beads stay flat.
	blood := PropertiesOf(TypeBloodCell)
	low := blood.AmplitudeAt(500e3)
	high := blood.AmplitudeAt(3e6)
	if high >= low*0.85 {
		t.Errorf("blood amplitude at 3 MHz (%v) should be well below 500 kHz (%v)", high, low)
	}
	bead := PropertiesOf(TypeBead780)
	if bead.AmplitudeAt(3e6) != bead.AmplitudeAt(500e3) {
		t.Error("solid bead amplitude should be frequency-flat")
	}
}

func TestAmplitudeAtEdgeCases(t *testing.T) {
	p := PropertiesOf(TypeBloodCell)
	if p.AmplitudeAt(0) != p.BaseAmplitude {
		t.Error("zero frequency should return base amplitude")
	}
	if p.AmplitudeAt(-100) != p.BaseAmplitude {
		t.Error("negative frequency should return base amplitude")
	}
}

func TestChannelVelocityMatchesPaper(t *testing.T) {
	// §VII-A: 45 µm electrode span crossed in ~20 ms → ~2.2 mm/s.
	v := DefaultChannel().VelocityUmS()
	transitMs := 45 / v * 1000
	if transitMs < 15 || transitMs > 27 {
		t.Fatalf("transit time %.1f ms, want ~20 ms (v=%v µm/s)", transitMs, v)
	}
}

func TestChannelValidate(t *testing.T) {
	good := DefaultChannel()
	if err := good.Validate(); err != nil {
		t.Fatalf("default channel invalid: %v", err)
	}
	bad := []Channel{
		{WidthUm: 0, HeightUm: 20, PoreLengthUm: 500, FlowRateUlMin: 0.08},
		{WidthUm: 30, HeightUm: -1, PoreLengthUm: 500, FlowRateUlMin: 0.08},
		{WidthUm: 30, HeightUm: 20, PoreLengthUm: 500, FlowRateUlMin: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if (Channel{}).VelocityUmS() != 0 {
		t.Error("zero channel velocity should be 0")
	}
}

func TestSampleExpectedCountAndValidate(t *testing.T) {
	s := NewSample(10, map[Type]float64{TypeBloodCell: 2000, TypeBead358: 50})
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := s.ExpectedCount(TypeBloodCell); got != 20000 {
		t.Fatalf("ExpectedCount = %v, want 20000", got)
	}
	if got := s.ExpectedCount(TypeBead780); got != 0 {
		t.Fatalf("missing type count = %v, want 0", got)
	}
	if got := s.TotalConcentration(); got != 2050 {
		t.Fatalf("TotalConcentration = %v", got)
	}
	if err := (Sample{VolumeUl: 0}).Validate(); err == nil {
		t.Fatal("expected error for zero volume")
	}
	neg := Sample{VolumeUl: 1, ConcentrationPerUl: map[Type]float64{TypeBloodCell: -5}}
	if err := neg.Validate(); err == nil {
		t.Fatal("expected error for negative concentration")
	}
}

func TestNewSampleCopiesAndDropsNonPositive(t *testing.T) {
	conc := map[Type]float64{TypeBloodCell: 100, TypeBead358: 0, TypeBead780: -2}
	s := NewSample(5, conc)
	if _, ok := s.ConcentrationPerUl[TypeBead358]; ok {
		t.Error("zero concentration should be dropped")
	}
	if _, ok := s.ConcentrationPerUl[TypeBead780]; ok {
		t.Error("negative concentration should be dropped")
	}
	conc[TypeBloodCell] = 999
	if s.ConcentrationPerUl[TypeBloodCell] != 100 {
		t.Error("NewSample must copy the map")
	}
}

func TestMixConservesParticles(t *testing.T) {
	blood := NewSample(8, map[Type]float64{TypeBloodCell: 2500})
	beads := NewSample(2, map[Type]float64{TypeBead358: 400, TypeBead780: 100})
	mixed := Mix(blood, beads)
	if mixed.VolumeUl != 10 {
		t.Fatalf("mixed volume %v, want 10", mixed.VolumeUl)
	}
	// Particle counts must be conserved by mixing.
	for _, typ := range AllTypes() {
		want := blood.ExpectedCount(typ) + beads.ExpectedCount(typ)
		got := mixed.ExpectedCount(typ)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%v: mixed count %v, want %v", typ, got, want)
		}
	}
}

func TestMixEmpty(t *testing.T) {
	if got := Mix(Sample{}, Sample{}); got.VolumeUl != 0 {
		t.Fatalf("Mix of empties = %+v", got)
	}
}

func TestQuickMixConservation(t *testing.T) {
	f := func(va, vb uint8, ca, cb uint16) bool {
		a := NewSample(float64(va%50)+1, map[Type]float64{TypeBloodCell: float64(ca)})
		b := NewSample(float64(vb%50)+1, map[Type]float64{TypeBloodCell: float64(cb)})
		m := Mix(a, b)
		want := a.ExpectedCount(TypeBloodCell) + b.ExpectedCount(TypeBloodCell)
		return math.Abs(m.ExpectedCount(TypeBloodCell)-want) < 1e-6*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateTransitsPoissonRate(t *testing.T) {
	rng := drbg.NewFromSeed(1)
	cfg := GenerateConfig{
		Channel:   DefaultChannel(),
		Sample:    NewSample(100, map[Type]float64{TypeBead358: 3000}),
		DurationS: 300,
		Loss:      LossModel{Disabled: true},
	}
	transits, err := GenerateTransits(cfg, rng)
	if err != nil {
		t.Fatalf("GenerateTransits: %v", err)
	}
	// Expected arrivals = conc × flow × duration = 3000 × 0.08/60 × 300 = 1200.
	want := 1200.0
	got := float64(len(transits))
	if math.Abs(got-want) > 5*math.Sqrt(want) {
		t.Fatalf("transit count %v, want ~%v", got, want)
	}
}

func TestGenerateTransitsSorted(t *testing.T) {
	rng := drbg.NewFromSeed(2)
	cfg := GenerateConfig{
		Channel: DefaultChannel(),
		Sample: NewSample(100, map[Type]float64{
			TypeBloodCell: 2000, TypeBead358: 500, TypeBead780: 500,
		}),
		DurationS: 120,
		Loss:      DefaultLossModel(),
	}
	transits, err := GenerateTransits(cfg, rng)
	if err != nil {
		t.Fatalf("GenerateTransits: %v", err)
	}
	for i := 1; i < len(transits); i++ {
		if transits[i].EntryS < transits[i-1].EntryS {
			t.Fatalf("transits not sorted at %d", i)
		}
	}
	for _, tr := range transits {
		if tr.EntryS < 0 || tr.EntryS >= cfg.DurationS {
			t.Fatalf("transit outside window: %v", tr.EntryS)
		}
		if tr.VelocityUmS <= 0 {
			t.Fatalf("non-positive velocity %v", tr.VelocityUmS)
		}
	}
}

func TestGenerateTransitsDeterministicForSeed(t *testing.T) {
	cfg := GenerateConfig{
		Channel:   DefaultChannel(),
		Sample:    NewSample(50, map[Type]float64{TypeBloodCell: 1000, TypeBead780: 200}),
		DurationS: 60,
		Loss:      DefaultLossModel(),
	}
	a, err := GenerateTransits(cfg, drbg.NewFromSeed(33))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTransits(cfg, drbg.NewFromSeed(33))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transit %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateTransitsLossReducesCounts(t *testing.T) {
	cfg := GenerateConfig{
		Channel:   DefaultChannel(),
		Sample:    NewSample(200, map[Type]float64{TypeBead780: 8000}),
		DurationS: 1800, // long run: sedimentation bites
	}
	cfg.Loss = LossModel{Disabled: true}
	ideal, err := GenerateTransits(cfg, drbg.NewFromSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Loss = LossModel{SedimentationScale: 5, AdsorptionScale: 3}
	lossy, err := GenerateTransits(cfg, drbg.NewFromSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(lossy) >= len(ideal) {
		t.Fatalf("loss model should reduce counts: %d vs %d", len(lossy), len(ideal))
	}
	// With strong sedimentation the deficit must exceed Poisson noise.
	if float64(len(lossy)) > 0.9*float64(len(ideal)) {
		t.Fatalf("deficit too small: %d of %d survived", len(lossy), len(ideal))
	}
}

func TestGenerateTransitsValidation(t *testing.T) {
	good := GenerateConfig{
		Channel:   DefaultChannel(),
		Sample:    NewSample(10, map[Type]float64{TypeBloodCell: 100}),
		DurationS: 10,
	}
	rng := drbg.NewFromSeed(1)

	bad := good
	bad.Channel.FlowRateUlMin = 0
	if _, err := GenerateTransits(bad, rng); err == nil {
		t.Error("expected channel validation error")
	}
	bad = good
	bad.Sample.VolumeUl = 0
	if _, err := GenerateTransits(bad, rng); err == nil {
		t.Error("expected sample validation error")
	}
	bad = good
	bad.DurationS = 0
	if _, err := GenerateTransits(bad, rng); err == nil {
		t.Error("expected duration validation error")
	}
	if _, err := GenerateTransits(good, nil); err == nil {
		t.Error("expected nil-rng error")
	}
}

func TestCountByType(t *testing.T) {
	transits := []Transit{
		{Type: TypeBloodCell}, {Type: TypeBloodCell}, {Type: TypeBead358},
	}
	counts := CountByType(transits)
	if counts[TypeBloodCell] != 2 || counts[TypeBead358] != 1 || counts[TypeBead780] != 0 {
		t.Fatalf("CountByType = %v", counts)
	}
}

func TestLossEfficiencyMonotoneInTime(t *testing.T) {
	l := DefaultLossModel()
	p := PropertiesOf(TypeBead780)
	prev := 2.0
	for _, tS := range []float64{0, 600, 1800, 3600, 7200} {
		e := l.efficiency(p, tS)
		if e <= 0 || e > 1 {
			t.Fatalf("efficiency(%v) = %v out of (0,1]", tS, e)
		}
		if e >= prev {
			t.Fatalf("efficiency should decrease with time: %v at t=%v", e, tS)
		}
		prev = e
	}
	if got := (LossModel{Disabled: true}).efficiency(p, 1e6); got != 1 {
		t.Fatalf("disabled loss efficiency = %v, want 1", got)
	}
}
