// Package loadgen is the fleet-scale load harness of ROADMAP item 4: K
// simulated dongle+phone pairs driving a live analysis service through the
// same stack a real deployment uses — internal/microfluidic captures,
// internal/phone relays, the cloud HTTP client with its retry and
// idempotency machinery — and reporting what the paper's capacity questions
// need: throughput, p50/p95/p99 submit latency, how much traffic the
// admission layers (rate limiter, shedder, queue bound) turned away, how
// many submissions the idempotency index absorbed, and whether any accepted
// capture was lost.
//
// Determinism: everything derives from Config.Seed — capture bytes, the
// dedup draw, and the optional fault schedule — so a reported SLO number is
// reproducible bit-for-bit by re-running with the same configuration.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"medsen/internal/cloud"
	"medsen/internal/csvio"
	"medsen/internal/drbg"
	"medsen/internal/faultinject"
	"medsen/internal/microfluidic"
	"medsen/internal/phone"
	"medsen/internal/promexp"
	"medsen/internal/sensor"
)

// Config describes one load run.
type Config struct {
	// BaseURL is the target analysis service.
	BaseURL string
	// APIKey authenticates every simulated device (the service may run
	// with auth disabled, in which case leave it empty).
	APIKey string
	// Devices is the fleet size K.
	Devices int
	// CapturesPerDevice is how many captures each device submits
	// sequentially (a device is one patient running tests back to back).
	CapturesPerDevice int
	// Seed pins the whole run: capture bytes, dedup draws, fault schedule.
	Seed uint64
	// SharedCapture replays one reference acquisition across the fleet
	// under per-submission idempotency keys (distinct keys force distinct
	// analyses server-side). This is the cheap mode for big K: capture
	// synthesis is paid once instead of K times. When false every device
	// acquires its own capture from its own seeded noise.
	SharedCapture bool
	// CaptureDurationS is the acquisition length in simulated seconds
	// (default 10). Longer captures mean bigger payloads and slower
	// analyses — the lever for pushing the service into its shedder.
	CaptureDurationS float64
	// DedupFraction in [0,1] is the probability that a submission re-sends
	// the device's previous idempotency key — the retransmit-after-timeout
	// behaviour of a flaky fleet. Those submissions must dedup, not store.
	DedupFraction float64
	// Async routes submissions through the job API with polling instead of
	// the synchronous upload.
	Async bool
	// Batch, when > 1, coalesces each device's captures into
	// POST /api/v1/analyses:batch requests of up to this many items instead
	// of submitting them one by one. Per-item idempotency keys (and the
	// dedup draw) are unchanged, so the exactly-once accounting is identical
	// to the single-submit modes; what changes is the amortization — one
	// HTTP round trip and one admission decision per batch. Capped at
	// cloud.MaxBatchItems. Mutually exclusive with Async.
	Batch int
	// PollInterval paces async polls (0 → client default).
	PollInterval time.Duration
	// Uplink models the cellular link (zero value: no simulated transfer
	// accounting; the relay still submits).
	Uplink phone.Link
	// Retry, when non-nil, gives every device the client's backoff loop —
	// a compliant fleet that honours Retry-After. Without it each 429 is a
	// terminal outcome for that submission, which is what admission-layer
	// measurements want.
	Retry *cloud.RetryPolicy
	// Faults, when non-nil, wraps every device's transport in a seeded
	// fault injector (resets, 5xx, truncations, delays) so the run
	// exercises the relay's retry/spool seams. The per-device seed is
	// derived from Seed and the device index.
	Faults *faultinject.HTTPConfig
	// Progress, when non-nil, receives coarse run updates.
	Progress func(string)
}

// Result is the harness report. All counters are submission-level: one
// capture submission is one unit whatever transport retries it took.
type Result struct {
	Devices  int `json:"devices"`
	Captures int `json:"captures"`

	// Succeeded submissions resolved to a stored analysis (fresh or
	// deduped); Failed is everything else, split by admission outcome.
	Succeeded         int `json:"succeeded"`
	RateLimited       int `json:"rate_limited"`
	Overloaded        int `json:"overloaded"`
	QueueFull         int `json:"queue_full"`
	DuplicateInFlight int `json:"duplicate_in_flight"`
	OtherErrors       int `json:"other_errors"`

	// UniqueAnalyses is the number of distinct analysis ids the fleet's
	// successes resolved to; DedupHits is Succeeded − UniqueAnalyses (the
	// submissions the idempotency index absorbed).
	UniqueAnalyses int `json:"unique_analyses"`
	DedupHits      int `json:"dedup_hits"`
	// CaptureLoss counts unique analyses that were acknowledged but not
	// retrievable afterwards — the number that must be zero.
	CaptureLoss int `json:"capture_loss"`

	// BatchRequests counts batch round trips for batch-mode runs (zero
	// otherwise). Captures/Succeeded stay item-level, so
	// Captures/BatchRequests is the measured amortization factor.
	BatchRequests int `json:"batch_requests,omitempty"`

	Elapsed time.Duration `json:"elapsed_ns"`
	// ThroughputPerSec is Succeeded / Elapsed.
	ThroughputPerSec float64 `json:"throughput_per_sec"`

	// Submit latency over successful submissions (wall clock per
	// submission, including polling for async runs). Batch-mode runs record
	// one sample per batch round trip — the latency a spool flush or bulk
	// re-upload actually experiences.
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP95 time.Duration `json:"latency_p95_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`
	LatencyMax time.Duration `json:"latency_max_ns"`

	// Relay aggregates the fleet's phone-side counters (breaker state is
	// the last device's — meaningful only for single-device runs).
	Relay phone.RelayMetrics `json:"relay"`

	// Server holds the service-side counter deltas across the run when
	// /metrics was reachable, nil otherwise. This is the ground truth the
	// client-observed counts are checked against.
	Server *cloud.Metrics `json:"server,omitempty"`
}

// Run executes one load run. The context cancels in-flight submissions;
// a cancelled run returns the partial result alongside ctx.Err().
func Run(ctx context.Context, cfg Config) (Result, error) {
	if cfg.Devices <= 0 {
		return Result{}, errors.New("loadgen: Devices must be positive")
	}
	if cfg.CapturesPerDevice <= 0 {
		cfg.CapturesPerDevice = 1
	}
	if cfg.CaptureDurationS <= 0 {
		cfg.CaptureDurationS = 10
	}
	if cfg.DedupFraction < 0 || cfg.DedupFraction > 1 {
		return Result{}, fmt.Errorf("loadgen: DedupFraction %g outside [0,1]", cfg.DedupFraction)
	}
	if cfg.Batch > cloud.MaxBatchItems {
		return Result{}, fmt.Errorf("loadgen: Batch %d exceeds the service's per-request cap %d", cfg.Batch, cloud.MaxBatchItems)
	}
	if cfg.Batch > 1 && cfg.Async {
		return Result{}, errors.New("loadgen: Batch and Async are mutually exclusive")
	}
	progress := cfg.Progress
	if progress == nil {
		progress = func(string) {}
	}

	// Synthesize payloads up front so capture generation is excluded from
	// the measured window (the harness measures the service, not the DSP).
	var shared []byte
	payloads := make([][]byte, cfg.Devices)
	if cfg.SharedCapture {
		p, err := capturePayload(cfg.Seed, cfg.CaptureDurationS)
		if err != nil {
			return Result{}, err
		}
		shared = p
		progress(fmt.Sprintf("synthesized 1 shared capture (%d bytes)", len(p)))
	} else {
		for i := range payloads {
			p, err := capturePayload(cfg.Seed+uint64(i)+1, cfg.CaptureDurationS)
			if err != nil {
				return Result{}, err
			}
			payloads[i] = p
		}
		progress(fmt.Sprintf("synthesized %d device captures", len(payloads)))
	}

	// Server-side counters before the run, for the delta report.
	probe := &cloud.Client{BaseURL: cfg.BaseURL, APIKey: cfg.APIKey}
	before, beforeErr := probe.Metrics(ctx)

	var (
		mu        sync.Mutex
		res       Result
		latencies []time.Duration
		analyses  = make(map[string]struct{})
		relay     phone.RelayMetrics
	)
	res.Devices = cfg.Devices
	progress(fmt.Sprintf("launching %d devices × %d captures", cfg.Devices, cfg.CapturesPerDevice))

	start := time.Now()
	var wg sync.WaitGroup
	for dev := 0; dev < cfg.Devices; dev++ {
		wg.Add(1)
		go func(dev int) {
			defer wg.Done()
			payload := shared
			if payload == nil {
				payload = payloads[dev]
			}
			rng := drbg.NewFromSeed(cfg.Seed ^ (0x9E3779B97F4A7C15 * uint64(dev+1)))
			prevKey := ""
			var local struct {
				latencies []time.Duration
				ids       []string
				outcomes  outcomeCounts
				batches   int
			}
			// nextKey draws the submission's idempotency key: fresh per
			// capture index, with a DedupFraction chance of retransmitting
			// the previous one. Identical across submit modes, so batch and
			// single-submit runs of the same seed exercise the same keys.
			nextKey := func(c int) string {
				key := fmt.Sprintf("loadgen:%d:d%d:c%d", cfg.Seed, dev, c)
				if prevKey != "" && rng.Float64() < cfg.DedupFraction {
					key = prevKey // simulated retransmit of the previous capture
				}
				prevKey = key
				return key
			}
			var m phone.RelayMetrics
			if cfg.Batch > 1 {
				client := deviceClient(cfg, dev)
				for c := 0; c < cfg.CapturesPerDevice; {
					if ctx.Err() != nil {
						return
					}
					n := cfg.Batch
					if rem := cfg.CapturesPerDevice - c; rem < n {
						n = rem
					}
					items := make([]cloud.BatchSubmission, n)
					for j := range items {
						items[j] = cloud.BatchSubmission{Payload: payload, IdempotencyKey: nextKey(c + j)}
					}
					c += n
					t0 := time.Now()
					resp, err := client.SubmitBatch(ctx, items)
					local.batches++
					if err != nil {
						// A whole-batch rejection (transport failure, 429,
						// shed) fails every capture it carried.
						for range items {
							local.outcomes.classify(err)
						}
						continue
					}
					local.latencies = append(local.latencies, time.Since(t0))
					for _, ir := range resp.Results {
						if ir.OK() {
							local.ids = append(local.ids, ir.ID)
						} else {
							local.outcomes.classifyItem(ir)
						}
					}
				}
			} else {
				r := deviceRelay(cfg, dev)
				for c := 0; c < cfg.CapturesPerDevice; c++ {
					if ctx.Err() != nil {
						return
					}
					key := nextKey(c)
					t0 := time.Now()
					sub, err := r.SubmitKeyed(ctx, payload, key)
					if err != nil {
						local.outcomes.classify(err)
						continue
					}
					local.latencies = append(local.latencies, time.Since(t0))
					local.ids = append(local.ids, sub.ID)
				}
				m = r.Metrics()
			}
			mu.Lock()
			res.Captures += cfg.CapturesPerDevice
			res.Succeeded += len(local.ids)
			res.BatchRequests += local.batches
			local.outcomes.addTo(&res)
			latencies = append(latencies, local.latencies...)
			for _, id := range local.ids {
				analyses[id] = struct{}{}
			}
			relay.LiveSubmits += m.LiveSubmits
			relay.SubmitFailures += m.SubmitFailures
			relay.Spooled += m.Spooled
			relay.BacklogFlushed += m.BacklogFlushed
			relay.BreakerState = m.BreakerState
			mu.Unlock()
		}(dev)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Relay = relay
	res.UniqueAnalyses = len(analyses)
	res.DedupHits = res.Succeeded - res.UniqueAnalyses
	if res.Elapsed > 0 {
		res.ThroughputPerSec = float64(res.Succeeded) / res.Elapsed.Seconds()
	}
	res.LatencyP50 = percentile(latencies, 0.50)
	res.LatencyP95 = percentile(latencies, 0.95)
	res.LatencyP99 = percentile(latencies, 0.99)
	res.LatencyMax = percentile(latencies, 1)

	if err := ctx.Err(); err != nil {
		return res, err
	}

	// Capture-loss audit: every acknowledged analysis must still be
	// retrievable. This is the check that catches a service that 2xx'd a
	// capture it never durably stored.
	progress(fmt.Sprintf("auditing %d unique analyses for loss", len(analyses)))
	verify := &cloud.Client{BaseURL: cfg.BaseURL, APIKey: cfg.APIKey,
		Retry: &cloud.RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond}}
	for id := range analyses {
		if _, err := verify.GetReport(ctx, id); err != nil {
			if ctx.Err() != nil {
				return res, ctx.Err()
			}
			res.CaptureLoss++
		}
	}

	if beforeErr == nil {
		if after, err := probe.Metrics(ctx); err == nil {
			delta := diffMetrics(before, after)
			res.Server = &delta
		}
	}
	return res, nil
}

// outcomeCounts buckets failed submissions by the service's admission
// verdict, matched through the client's sentinel errors.
type outcomeCounts struct {
	rateLimited, overloaded, queueFull, dupInFlight, other int
}

func (o *outcomeCounts) classify(err error) {
	switch {
	case errors.Is(err, cloud.ErrRateLimited):
		o.rateLimited++
	case errors.Is(err, cloud.ErrOverloaded):
		o.overloaded++
	case errors.Is(err, cloud.ErrQueueFull):
		o.queueFull++
	case errors.Is(err, cloud.ErrDuplicateInFlight):
		o.dupInFlight++
	default:
		o.other++
	}
}

// classifyItem is classify for a batch item's per-slot verdict. The only
// admission outcome that can reach an individual slot is a duplicate-in-flight
// race (whole-batch outcomes — rate limiting, shedding — reject the request
// before any item runs and go through classify instead).
func (o *outcomeCounts) classifyItem(res cloud.BatchItemResult) {
	code := ""
	if res.Error != nil {
		code = res.Error.Code
	}
	if code == cloud.CodeDuplicateInFlight {
		o.dupInFlight++
		return
	}
	o.other++
}

func (o outcomeCounts) addTo(res *Result) {
	res.RateLimited += o.rateLimited
	res.Overloaded += o.overloaded
	res.QueueFull += o.queueFull
	res.DuplicateInFlight += o.dupInFlight
	res.OtherErrors += o.other
}

// deviceClient builds one device's HTTP client (and, when configured, its own
// seeded fault injector) — the transport both submit modes share.
func deviceClient(cfg Config, dev int) *cloud.Client {
	client := &cloud.Client{
		BaseURL:  cfg.BaseURL,
		APIKey:   cfg.APIKey,
		ClientID: fmt.Sprintf("loadgen-d%d", dev),
		Retry:    cfg.Retry,
	}
	if cfg.Faults != nil {
		fc := *cfg.Faults
		fc.Seed = int64(cfg.Seed) + int64(dev)*7919
		client.HTTPClient = &http.Client{Transport: faultinject.NewRoundTripper(nil, fc)}
	}
	return client
}

// deviceRelay builds one simulated phone around its own HTTP client.
func deviceRelay(cfg Config, dev int) *phone.Relay {
	return &phone.Relay{
		Client:       deviceClient(cfg, dev),
		Uplink:       cfg.Uplink,
		Async:        cfg.Async,
		PollInterval: cfg.PollInterval,
	}
}

// capturePayload synthesizes one compressed capture from a seed: the
// standard blood sample through the default sensor with loss disabled —
// deterministic bytes, realistic size.
func capturePayload(seed uint64, durationS float64) ([]byte, error) {
	s := sensor.NewDefault()
	s.Loss = microfluidic.LossModel{Disabled: true}
	sample := microfluidic.NewSample(10, map[microfluidic.Type]float64{
		microfluidic.TypeBloodCell: 300,
	})
	res, err := s.Acquire(sensor.AcquireConfig{Sample: sample, DurationS: durationS}, drbg.NewFromSeed(seed))
	if err != nil {
		return nil, fmt.Errorf("loadgen: synthesizing capture: %w", err)
	}
	return csvio.CompressAcquisition(res.Acquisition)
}

// percentile returns the q-quantile (0 < q ≤ 1) by nearest-rank over a copy
// of the samples; 0 when there are none.
func percentile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// diffMetrics subtracts counter values (a − b answers "what did this run
// cost the server"); point-in-time gauges keep their final value.
func diffMetrics(before, after cloud.Metrics) cloud.Metrics {
	d := after
	d.Uploads -= before.Uploads
	d.UploadErrors -= before.UploadErrors
	d.Authentications -= before.Authentications
	d.AuthAccepted -= before.AuthAccepted
	d.JobsEnqueued -= before.JobsEnqueued
	d.JobsRejected -= before.JobsRejected
	d.JobsCompleted -= before.JobsCompleted
	d.JobsFailed -= before.JobsFailed
	d.JobsEvicted -= before.JobsEvicted
	d.JobsRecovered -= before.JobsRecovered
	d.JobJournalErrors -= before.JobJournalErrors
	d.JobEvictErrors -= before.JobEvictErrors
	d.StoreSalvaged -= before.StoreSalvaged
	d.LeaseExpirations -= before.LeaseExpirations
	d.JobsReclaimed -= before.JobsReclaimed
	d.JobsPoisoned -= before.JobsPoisoned
	d.RateLimited -= before.RateLimited
	d.Shed -= before.Shed
	d.DedupHits -= before.DedupHits
	d.DedupJournalErrors -= before.DedupJournalErrors
	d.BatchRequests -= before.BatchRequests
	d.BatchItems -= before.BatchItems
	d.BatchItemErrors -= before.BatchItemErrors
	d.BatchRejected -= before.BatchRejected
	d.AuthDenied -= before.AuthDenied
	d.PermissionDenied -= before.PermissionDenied
	d.AuditJournalErrors -= before.AuditJournalErrors
	return d
}

// WritePrometheus renders the run report in the Prometheus text format —
// the loadgen-side families mirroring the service's medsen_* set, so a CI
// run can publish its SLO numbers to the same scrape pipeline that watches
// production. Latencies convert to base seconds per the exposition
// conventions.
func (r Result) WritePrometheus(w io.Writer) error {
	pw := promexp.NewWriter(w)
	pw.Gauge("medsen_loadgen_devices", "Simulated fleet size of the run.", float64(r.Devices))
	pw.Counter("medsen_loadgen_captures_total", "Capture submissions attempted.", float64(r.Captures))
	pw.Counter("medsen_loadgen_succeeded_total", "Submissions resolved to a stored analysis.", float64(r.Succeeded))
	pw.Counter("medsen_loadgen_rate_limited_total", "Submissions bounced by the per-client rate limiter.", float64(r.RateLimited))
	pw.Counter("medsen_loadgen_overloaded_total", "Submissions shed by the queue-wait estimator.", float64(r.Overloaded))
	pw.Counter("medsen_loadgen_queue_full_total", "Submissions bounced by the queue-depth bound.", float64(r.QueueFull))
	pw.Counter("medsen_loadgen_duplicate_in_flight_total", "Submissions answered 409 while the owning job ran.", float64(r.DuplicateInFlight))
	pw.Counter("medsen_loadgen_other_errors_total", "Submissions failed for any other reason.", float64(r.OtherErrors))
	pw.Counter("medsen_loadgen_batch_requests_total", "Batch round trips for batch-mode runs.", float64(r.BatchRequests))
	pw.Counter("medsen_loadgen_dedup_hits_total", "Successful submissions absorbed by the idempotency index.", float64(r.DedupHits))
	pw.Counter("medsen_loadgen_capture_loss_total", "Acknowledged analyses that were not retrievable afterwards.", float64(r.CaptureLoss))
	pw.Gauge("medsen_loadgen_unique_analyses", "Distinct analyses the run's successes resolved to.", float64(r.UniqueAnalyses))
	pw.Gauge("medsen_loadgen_throughput_per_second", "Successful submissions per second of run wall clock.", r.ThroughputPerSec)
	pw.Gauge("medsen_loadgen_latency_seconds", "Submit latency quantiles over successful submissions.",
		r.LatencyP50.Seconds(), "quantile", "0.5")
	pw.Gauge("medsen_loadgen_latency_seconds", "", r.LatencyP95.Seconds(), "quantile", "0.95")
	pw.Gauge("medsen_loadgen_latency_seconds", "", r.LatencyP99.Seconds(), "quantile", "0.99")
	pw.Gauge("medsen_loadgen_latency_seconds", "", r.LatencyMax.Seconds(), "quantile", "1")
	r.Relay.WritePrometheus(pw)
	return pw.Err()
}

// Summary renders the human-readable report the CLI prints.
func (r Result) Summary() string {
	var b []byte
	add := func(format string, args ...any) { b = fmt.Appendf(b, format+"\n", args...) }
	add("devices            %d", r.Devices)
	add("captures           %d", r.Captures)
	add("succeeded          %d (%d unique analyses, %d dedup hits)", r.Succeeded, r.UniqueAnalyses, r.DedupHits)
	add("rate limited       %d", r.RateLimited)
	add("overloaded (shed)  %d", r.Overloaded)
	add("queue full         %d", r.QueueFull)
	add("dup in flight      %d", r.DuplicateInFlight)
	add("other errors       %d", r.OtherErrors)
	add("capture loss       %d", r.CaptureLoss)
	if r.BatchRequests > 0 {
		add("batch round trips  %d (%.1f captures/request)", r.BatchRequests,
			float64(r.Captures)/float64(r.BatchRequests))
	}
	add("elapsed            %v", r.Elapsed.Round(time.Millisecond))
	add("throughput         %.1f/s", r.ThroughputPerSec)
	add("latency p50/p95/p99/max  %v / %v / %v / %v",
		r.LatencyP50.Round(time.Millisecond), r.LatencyP95.Round(time.Millisecond),
		r.LatencyP99.Round(time.Millisecond), r.LatencyMax.Round(time.Millisecond))
	if r.Server != nil {
		add("server deltas      uploads=%d enqueued=%d rate_limited=%d shed=%d dedup_hits=%d upload_errors=%d",
			r.Server.Uploads, r.Server.JobsEnqueued, r.Server.RateLimited,
			r.Server.Shed, r.Server.DedupHits, r.Server.UploadErrors)
		if r.Server.JobsReclaimed != 0 || r.Server.JobsPoisoned != 0 || r.Server.LeaseExpirations != 0 || r.Server.WorkersActive != 0 {
			add("worker deltas      lease_expirations=%d reclaimed=%d poisoned=%d workers_active=%d",
				r.Server.LeaseExpirations, r.Server.JobsReclaimed, r.Server.JobsPoisoned, r.Server.WorkersActive)
		}
	}
	return string(b)
}
