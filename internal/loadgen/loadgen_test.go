package loadgen

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"medsen/internal/cloud"
	"medsen/internal/promexp"
)

func hostService(t *testing.T, cfg cloud.ServiceConfig) (*cloud.Service, string) {
	t.Helper()
	svc, err := cloud.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(svc.Close)
	return svc, ts.URL
}

// TestLoadgenSmoke is the acceptance smoke: a small fleet against an
// in-process service must land every capture (zero loss), classify every
// submission, keep the latency quantiles ordered, agree with the server's
// own counters, and render a run report that the strict exposition parser
// accepts line-for-line — same for the service's live /metrics.
func TestLoadgenSmoke(t *testing.T) {
	_, url := hostService(t, cloud.ServiceConfig{})
	res, err := Run(context.Background(), Config{
		BaseURL:           url,
		Devices:           8,
		CapturesPerDevice: 2,
		Seed:              42,
		SharedCapture:     true,
		DedupFraction:     0.25,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Captures != 16 || res.Succeeded != 16 {
		t.Fatalf("captures/succeeded = %d/%d, want 16/16", res.Captures, res.Succeeded)
	}
	if res.CaptureLoss != 0 {
		t.Fatalf("capture loss = %d, want 0", res.CaptureLoss)
	}
	if res.UniqueAnalyses+res.DedupHits != res.Succeeded {
		t.Fatalf("unique %d + dedup %d != succeeded %d", res.UniqueAnalyses, res.DedupHits, res.Succeeded)
	}
	if res.DedupHits == 0 {
		t.Fatal("DedupFraction 0.25 over 16 submissions produced no dedup hits")
	}
	if res.LatencyP50 <= 0 || res.LatencyP50 > res.LatencyP95 ||
		res.LatencyP95 > res.LatencyP99 || res.LatencyP99 > res.LatencyMax {
		t.Fatalf("latency quantiles out of order: %v/%v/%v/%v",
			res.LatencyP50, res.LatencyP95, res.LatencyP99, res.LatencyMax)
	}
	if res.ThroughputPerSec <= 0 {
		t.Fatalf("throughput = %v", res.ThroughputPerSec)
	}
	// The client-observed numbers must agree with the server's ground truth.
	if res.Server == nil {
		t.Fatal("no server counter deltas despite a reachable /metrics")
	}
	if int(res.Server.Uploads) != res.UniqueAnalyses {
		t.Fatalf("server uploads %d != unique analyses %d", res.Server.Uploads, res.UniqueAnalyses)
	}
	if int(res.Server.DedupHits) != res.DedupHits {
		t.Fatalf("server dedup hits %d != client %d", res.Server.DedupHits, res.DedupHits)
	}
	if res.Relay.LiveSubmits != int64(res.Succeeded) || res.Relay.SubmitFailures != 0 {
		t.Fatalf("relay aggregate = %+v", res.Relay)
	}

	// The run report is valid Prometheus exposition, line for line.
	var buf bytes.Buffer
	if err := res.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	fams, err := promexp.Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("loadgen exposition does not parse: %v\n%s", err, buf.String())
	}
	if f := fams["medsen_loadgen_capture_loss_total"]; f == nil || f.Samples[0].Value != 0 {
		t.Fatalf("capture-loss family = %+v", f)
	}
	if f := fams["medsen_loadgen_latency_seconds"]; f == nil || len(f.Samples) != 4 {
		t.Fatalf("latency family = %+v", f)
	}

	// And so is the loaded service's own /metrics.
	resp, err := http.Get(url + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	sfams, err := promexp.Parse(body)
	if err != nil {
		t.Fatalf("server exposition does not parse: %v", err)
	}
	if f := sfams["medsen_uploads_total"]; f == nil || int(f.Samples[0].Value) != res.UniqueAnalyses {
		t.Fatalf("server medsen_uploads_total = %+v, want %d", f, res.UniqueAnalyses)
	}
}

// TestLoadgenBatchMode coalesces each device's captures into batch
// submissions and checks the item-level accounting is identical to the
// single-submit mode: every capture resolves, retransmitted keys dedup, and
// the round-trip count shows the amortization (ceil(captures/batch) requests
// per device).
func TestLoadgenBatchMode(t *testing.T) {
	_, url := hostService(t, cloud.ServiceConfig{})
	res, err := Run(context.Background(), Config{
		BaseURL:           url,
		Devices:           4,
		CapturesPerDevice: 5,
		Seed:              42,
		SharedCapture:     true,
		DedupFraction:     0.25,
		Batch:             3,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Captures != 20 || res.Succeeded != 20 {
		t.Fatalf("captures/succeeded = %d/%d, want 20/20", res.Captures, res.Succeeded)
	}
	if res.CaptureLoss != 0 {
		t.Fatalf("capture loss = %d, want 0", res.CaptureLoss)
	}
	// 5 captures in batches of 3 is 2 round trips per device.
	if res.BatchRequests != 8 {
		t.Fatalf("batch requests = %d, want 8", res.BatchRequests)
	}
	if res.DedupHits == 0 {
		t.Fatal("DedupFraction 0.25 over 20 submissions produced no dedup hits")
	}
	if res.UniqueAnalyses+res.DedupHits != res.Succeeded {
		t.Fatalf("unique %d + dedup %d != succeeded %d", res.UniqueAnalyses, res.DedupHits, res.Succeeded)
	}
	// Server ground truth: every unique analysis was stored exactly once and
	// every retransmit was absorbed by the dedup index.
	if res.Server == nil {
		t.Fatal("no server counter deltas despite a reachable /metrics")
	}
	if int(res.Server.Uploads) != res.UniqueAnalyses {
		t.Fatalf("server uploads %d != unique analyses %d", res.Server.Uploads, res.UniqueAnalyses)
	}
	if int(res.Server.DedupHits) != res.DedupHits {
		t.Fatalf("server dedup hits %d != client %d", res.Server.DedupHits, res.DedupHits)
	}
	if got := int(res.Server.BatchRequests); got != res.BatchRequests {
		t.Fatalf("server batch requests %d != client %d", got, res.BatchRequests)
	}
	if got := int(res.Server.BatchItems); got != res.Captures {
		t.Fatalf("server batch items %d != captures %d", got, res.Captures)
	}

	// One latency sample per round trip, and the quantiles still order.
	if res.LatencyP50 <= 0 || res.LatencyP50 > res.LatencyMax {
		t.Fatalf("latency quantiles out of order: %v/%v", res.LatencyP50, res.LatencyMax)
	}
	var buf bytes.Buffer
	if err := res.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	fams, err := promexp.Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("loadgen exposition does not parse: %v\n%s", err, buf.String())
	}
	if f := fams["medsen_loadgen_batch_requests_total"]; f == nil || int(f.Samples[0].Value) != 8 {
		t.Fatalf("batch-requests family = %+v", f)
	}
}

// TestLoadgenBatchModeRejectsBadConfig pins the validation seams: a batch
// beyond the service cap and a batch+async combination both fail fast.
func TestLoadgenBatchModeRejectsBadConfig(t *testing.T) {
	if _, err := Run(context.Background(), Config{Devices: 1, Batch: cloud.MaxBatchItems + 1}); err == nil {
		t.Fatal("oversized Batch accepted")
	}
	if _, err := Run(context.Background(), Config{Devices: 1, Batch: 2, Async: true}); err == nil {
		t.Fatal("Batch+Async accepted")
	}
}

// TestLoadgenAsyncMode drives the job API end to end: submissions enqueue,
// poll, and resolve with no loss.
func TestLoadgenAsyncMode(t *testing.T) {
	_, url := hostService(t, cloud.ServiceConfig{Workers: 2, QueueDepth: 32})
	res, err := Run(context.Background(), Config{
		BaseURL:           url,
		Devices:           4,
		CapturesPerDevice: 2,
		Seed:              7,
		SharedCapture:     true,
		Async:             true,
		PollInterval:      5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Succeeded != 8 || res.CaptureLoss != 0 {
		t.Fatalf("async run = %+v", res)
	}
	if res.Server == nil || res.Server.JobsEnqueued == 0 {
		t.Fatalf("async run enqueued no jobs: %+v", res.Server)
	}
}

// TestLoadgenObservesRateLimiting: a deliberately throttled service turns
// fleet traffic into 429s, and the harness classifies them instead of
// conflating them with failures.
func TestLoadgenObservesRateLimiting(t *testing.T) {
	// All devices share the loopback address, so with auth disabled they
	// share one bucket: burst 2 admits two submissions, the rest bounce.
	_, url := hostService(t, cloud.ServiceConfig{RateLimit: 0.001, RateBurst: 2})
	res, err := Run(context.Background(), Config{
		BaseURL:       url,
		Devices:       6,
		Seed:          11,
		SharedCapture: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.RateLimited == 0 {
		t.Fatalf("throttled run reported no rate limiting: %+v", res)
	}
	if got := res.Succeeded + res.RateLimited + res.Overloaded + res.QueueFull +
		res.DuplicateInFlight + res.OtherErrors; got != res.Captures {
		t.Fatalf("outcomes sum to %d, want %d: %+v", got, res.Captures, res)
	}
	if res.CaptureLoss != 0 {
		t.Fatalf("capture loss = %d", res.CaptureLoss)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	samples := []time.Duration{5, 1, 4, 2, 3} // sorted: 1..5
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{{0.5, 2}, {0.95, 4}, {1, 5}} {
		if got := percentile(samples, tc.q); got != tc.want {
			t.Errorf("percentile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}
