package csvio

import (
	"archive/zip"
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"medsen/internal/drbg"
	"medsen/internal/lockin"
	"medsen/internal/sigproc"
)

func testAcquisition(t *testing.T, seconds float64) lockin.Acquisition {
	t.Helper()
	rng := drbg.NewFromSeed(61)
	carriers := []float64{500e3, 2000e3}
	traces := make([]sigproc.Trace, len(carriers))
	n := int(seconds * 450)
	for c := range carriers {
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = 1 + 0.001*rng.NormFloat64()
		}
		traces[c] = sigproc.Trace{Rate: 450, Samples: samples}
	}
	return lockin.Acquisition{CarriersHz: carriers, Traces: traces}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	acq := testAcquisition(t, 2)
	var buf bytes.Buffer
	if err := EncodeAcquisition(&buf, acq); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeAcquisition(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got.CarriersHz) != 2 || got.CarriersHz[0] != 500e3 || got.CarriersHz[1] != 2000e3 {
		t.Fatalf("carriers = %v", got.CarriersHz)
	}
	if math.Abs(got.Traces[0].Rate-450) > 0.01 {
		t.Fatalf("recovered rate %v, want 450", got.Traces[0].Rate)
	}
	for c := range acq.Traces {
		if len(got.Traces[c].Samples) != len(acq.Traces[c].Samples) {
			t.Fatalf("trace %d length mismatch", c)
		}
		for i := range acq.Traces[c].Samples {
			if got.Traces[c].Samples[i] != acq.Traces[c].Samples[i] {
				t.Fatalf("trace %d sample %d: %v != %v", c, i,
					got.Traces[c].Samples[i], acq.Traces[c].Samples[i])
			}
		}
	}
}

func TestEncodeValidations(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeAcquisition(&buf, lockin.Acquisition{}); err == nil {
		t.Error("expected error for empty acquisition")
	}
	acq := testAcquisition(t, 1)
	acq.Traces[1].Samples = acq.Traces[1].Samples[:10]
	if err := EncodeAcquisition(&buf, acq); err == nil {
		t.Error("expected error for ragged traces")
	}
	acq = testAcquisition(t, 1)
	acq.Traces[1].Rate = 100
	if err := EncodeAcquisition(&buf, acq); err == nil {
		t.Error("expected error for mismatched rates")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"empty", ""},
		{"bad header", "foo,bar\n1,2\n"},
		{"bad channel column", "time_s,chX\n0,1\n"},
		{"one sample only", "time_s,ch_500000Hz\n0,1\n"},
		{"bad time", "time_s,ch_500000Hz\nx,1\n0.1,1\n"},
		{"bad value", "time_s,ch_500000Hz\n0,x\n0.1,1\n"},
		{"ragged row", "time_s,ch_500000Hz\n0,1,9\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeAcquisition(strings.NewReader(tc.csv))
			if err == nil {
				t.Fatalf("expected error for %q", tc.csv)
			}
			if tc.name != "empty" && !errors.Is(err, ErrBadCSV) {
				t.Fatalf("error %v should wrap ErrBadCSV", err)
			}
		})
	}
}

func TestCompressRoundTrip(t *testing.T) {
	acq := testAcquisition(t, 3)
	data, err := CompressAcquisition(acq)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	got, err := DecompressAcquisition(data)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if len(got.Traces) != len(acq.Traces) {
		t.Fatalf("trace count %d", len(got.Traces))
	}
	for i := range acq.Traces[0].Samples {
		if got.Traces[0].Samples[i] != acq.Traces[0].Samples[i] {
			t.Fatal("samples corrupted through zip round trip")
		}
	}
}

func TestCompressionShrinksPayload(t *testing.T) {
	// §VII-B reports ~2.5× shrink (600 MB → 240 MB) on real captures.
	acq := testAcquisition(t, 10)
	raw, err := CSVSize(acq)
	if err != nil {
		t.Fatalf("CSVSize: %v", err)
	}
	compressed, err := CompressAcquisition(acq)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	ratio := float64(raw) / float64(len(compressed))
	if ratio < 1.5 {
		t.Fatalf("compression ratio %.2f, want > 1.5 (raw %d, zip %d)",
			ratio, raw, len(compressed))
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	if _, err := DecompressAcquisition([]byte("not a zip")); err == nil {
		t.Fatal("expected error for non-zip data")
	}
}

func TestDecompressRejectsMissingMember(t *testing.T) {
	// A valid zip without measurements.csv.
	var buf bytes.Buffer
	data, err := CompressAcquisition(testAcquisition(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	_ = data
	// Build a zip with a wrong member name by re-zipping manually.
	buf.Reset()
	zw := newZipWithMember(t, &buf, "other.csv", "hello")
	_ = zw
	if _, err := DecompressAcquisition(buf.Bytes()); err == nil {
		t.Fatal("expected error for archive without measurements.csv")
	}
}

func TestCSVSizeMatchesEncoding(t *testing.T) {
	acq := testAcquisition(t, 2)
	size, err := CSVSize(acq)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeAcquisition(&buf, acq); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != size {
		t.Fatalf("CSVSize %d != encoded length %d", size, buf.Len())
	}
}

// newZipWithMember writes a zip with a single named member into buf.
func newZipWithMember(t *testing.T, buf *bytes.Buffer, name, content string) struct{} {
	t.Helper()
	zw := zip.NewWriter(buf)
	f, err := zw.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(content)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return struct{}{}
}
