package csvio

import (
	"strings"
	"testing"
)

// FuzzDecodeAcquisition hardens the CSV decoder: arbitrary text must yield
// an error or a structurally consistent acquisition, never a panic.
func FuzzDecodeAcquisition(f *testing.F) {
	f.Add("time_s,ch_500000Hz\n0,1\n0.002,0.99\n")
	f.Add("time_s,ch_500000Hz,ch_2000000Hz\n0,1,1\n0.002,1,1\n0.004,0.9,0.95\n")
	f.Add("")
	f.Add("garbage")
	f.Add("time_s,chX\n0,1\n")

	f.Fuzz(func(t *testing.T, csv string) {
		acq, err := DecodeAcquisition(strings.NewReader(csv))
		if err != nil {
			return
		}
		if len(acq.CarriersHz) != len(acq.Traces) {
			t.Fatal("accepted acquisition with mismatched carriers/traces")
		}
		n := len(acq.Traces[0].Samples)
		for _, tr := range acq.Traces {
			if len(tr.Samples) != n {
				t.Fatal("accepted ragged acquisition")
			}
		}
	})
}
