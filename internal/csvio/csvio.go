// Package csvio serializes acquisitions the way the MedSen prototype ships
// them to the cloud: CSV files of demodulated multi-carrier samples (§VII-B,
// "approximately 600MB of encrypted bio-sensor measurements, captured in csv
// files"), bundled into zip archives by the phone to save 4G transfer volume
// ("MedSen implements zip data compression on the smartphone. This reduced
// the sample size to 240MB").
package csvio

import (
	"archive/zip"
	"bytes"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"medsen/internal/lockin"
	"medsen/internal/sigproc"
)

// MeasurementsFileName is the archive member holding the CSV payload.
const MeasurementsFileName = "measurements.csv"

// ErrBadCSV reports a malformed measurements file.
var ErrBadCSV = errors.New("csvio: malformed measurements CSV")

// EncodeAcquisition writes the acquisition as CSV: a header row of
// "time_s,ch_<freq>Hz,..." followed by one row per sample instant.
func EncodeAcquisition(w io.Writer, acq lockin.Acquisition) error {
	if len(acq.Traces) == 0 {
		return errors.New("csvio: empty acquisition")
	}
	n := len(acq.Traces[0].Samples)
	rate := acq.Traces[0].Rate
	for i, tr := range acq.Traces {
		if len(tr.Samples) != n {
			return fmt.Errorf("csvio: trace %d has %d samples, want %d", i, len(tr.Samples), n)
		}
		if tr.Rate != rate {
			return fmt.Errorf("csvio: trace %d rate %v differs from %v", i, tr.Rate, rate)
		}
	}

	cw := csv.NewWriter(w)
	header := make([]string, 0, len(acq.CarriersHz)+1)
	header = append(header, "time_s")
	for _, f := range acq.CarriersHz {
		header = append(header, fmt.Sprintf("ch_%dHz", int64(f)))
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("csvio: writing header: %w", err)
	}
	row := make([]string, len(header))
	for i := 0; i < n; i++ {
		row[0] = strconv.FormatFloat(float64(i)/rate, 'g', -1, 64)
		for c, tr := range acq.Traces {
			row[c+1] = strconv.FormatFloat(tr.Samples[i], 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("csvio: writing row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("csvio: flushing: %w", err)
	}
	return nil
}

// DecodeBuffer holds reusable sample storage for DecodeAcquisitionBuffer
// and DecompressAcquisitionBuffer, so sustained decoding (one upload after
// another in the cloud service) stops paying append-growth garbage for every
// capture. The zero value is ready to use; a buffer must not be shared
// between concurrent decodes.
type DecodeBuffer struct {
	samples [][]float64
	times   []float64
}

// DecodeAcquisition parses a CSV produced by EncodeAcquisition. The sampling
// rate is recovered from the time column.
func DecodeAcquisition(r io.Reader) (lockin.Acquisition, error) {
	return decodeAcquisition(r, nil)
}

// DecodeAcquisitionBuffer is DecodeAcquisition with sample storage drawn
// from buf. The returned acquisition's traces alias buf's backing arrays and
// are valid only until the buffer's next decode: callers that recycle the
// buffer (e.g. through a sync.Pool) must be done with the acquisition first.
func DecodeAcquisitionBuffer(r io.Reader, buf *DecodeBuffer) (lockin.Acquisition, error) {
	return decodeAcquisition(r, buf)
}

func decodeAcquisition(r io.Reader, buf *DecodeBuffer) (lockin.Acquisition, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return lockin.Acquisition{}, fmt.Errorf("%w: missing header: %v", ErrBadCSV, err)
	}
	if len(header) < 2 || header[0] != "time_s" {
		return lockin.Acquisition{}, fmt.Errorf("%w: bad header %q", ErrBadCSV, header)
	}
	carriers := make([]float64, 0, len(header)-1)
	for _, col := range header[1:] {
		var hz int64
		if _, err := fmt.Sscanf(col, "ch_%dHz", &hz); err != nil {
			return lockin.Acquisition{}, fmt.Errorf("%w: bad channel column %q", ErrBadCSV, col)
		}
		carriers = append(carriers, float64(hz))
	}

	var samples [][]float64
	var times []float64
	if buf != nil {
		if cap(buf.samples) < len(carriers) {
			buf.samples = make([][]float64, len(carriers))
		}
		samples = buf.samples[:len(carriers)]
		for c := range samples {
			samples[c] = samples[c][:0]
		}
		times = buf.times[:0]
	} else {
		samples = make([][]float64, len(carriers))
	}
	defer func() {
		// Keep whatever the appends grew, even on a parse error.
		if buf != nil {
			buf.samples = samples
			buf.times = times
		}
	}()
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return lockin.Acquisition{}, fmt.Errorf("%w: %v", ErrBadCSV, err)
		}
		if len(rec) != len(carriers)+1 {
			return lockin.Acquisition{}, fmt.Errorf("%w: row has %d fields, want %d",
				ErrBadCSV, len(rec), len(carriers)+1)
		}
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return lockin.Acquisition{}, fmt.Errorf("%w: bad time %q", ErrBadCSV, rec[0])
		}
		times = append(times, t)
		for c := range carriers {
			v, err := strconv.ParseFloat(rec[c+1], 64)
			if err != nil {
				return lockin.Acquisition{}, fmt.Errorf("%w: bad value %q", ErrBadCSV, rec[c+1])
			}
			samples[c] = append(samples[c], v)
		}
	}
	if len(times) < 2 {
		return lockin.Acquisition{}, fmt.Errorf("%w: need at least 2 samples", ErrBadCSV)
	}
	rate := float64(len(times)-1) / (times[len(times)-1] - times[0])

	acq := lockin.Acquisition{
		CarriersHz: carriers,
		Traces:     make([]sigproc.Trace, len(carriers)),
	}
	for c := range carriers {
		acq.Traces[c] = sigproc.Trace{Rate: rate, Samples: samples[c]}
	}
	return acq, nil
}

// CompressAcquisition encodes the acquisition as CSV inside a zip archive —
// the exact payload the phone uploads.
func CompressAcquisition(acq lockin.Acquisition) ([]byte, error) {
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	f, err := zw.Create(MeasurementsFileName)
	if err != nil {
		return nil, fmt.Errorf("csvio: creating archive member: %w", err)
	}
	if err := EncodeAcquisition(f, acq); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("csvio: closing archive: %w", err)
	}
	return buf.Bytes(), nil
}

// DecompressAcquisition reverses CompressAcquisition.
func DecompressAcquisition(data []byte) (lockin.Acquisition, error) {
	return DecompressAcquisitionBuffer(data, nil)
}

// DecompressAcquisitionBuffer is DecompressAcquisition with sample storage
// drawn from buf (which may be nil); see DecodeAcquisitionBuffer for the
// aliasing contract.
func DecompressAcquisitionBuffer(data []byte, buf *DecodeBuffer) (lockin.Acquisition, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return lockin.Acquisition{}, fmt.Errorf("csvio: opening archive: %w", err)
	}
	for _, f := range zr.File {
		if f.Name != MeasurementsFileName {
			continue
		}
		rc, err := f.Open()
		if err != nil {
			return lockin.Acquisition{}, fmt.Errorf("csvio: opening member: %w", err)
		}
		defer rc.Close()
		return decodeAcquisition(rc, buf)
	}
	return lockin.Acquisition{}, fmt.Errorf("csvio: archive lacks %s", MeasurementsFileName)
}

// CSVSize returns the exact size in bytes of the CSV encoding without
// retaining it (used by the §VII-B data-volume experiment).
func CSVSize(acq lockin.Acquisition) (int64, error) {
	var counter countingWriter
	if err := EncodeAcquisition(&counter, acq); err != nil {
		return 0, err
	}
	return counter.n, nil
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}
