package drbg

import (
	"bytes"
	"io"
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New([]byte("seed-material"), "personal")
	b := New([]byte("seed-material"), "personal")
	bufA := make([]byte, 512)
	bufB := make([]byte, 512)
	if err := a.Generate(bufA); err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := b.Generate(bufB); err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if !bytes.Equal(bufA, bufB) {
		t.Fatal("same seed and personalization must produce identical streams")
	}
}

func TestPersonalizationSeparatesStreams(t *testing.T) {
	a := New([]byte("seed"), "alpha")
	b := New([]byte("seed"), "beta")
	bufA := make([]byte, 64)
	bufB := make([]byte, 64)
	if err := a.Generate(bufA); err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := b.Generate(bufB); err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if bytes.Equal(bufA, bufB) {
		t.Fatal("different personalization strings must separate streams")
	}
}

func TestSeedSeparatesStreams(t *testing.T) {
	a := NewFromSeed(1)
	b := NewFromSeed(2)
	if a.Uint64() == b.Uint64() {
		t.Fatal("different seeds should (overwhelmingly) differ in first draw")
	}
}

func TestReseedChangesStream(t *testing.T) {
	a := NewFromSeed(7)
	b := NewFromSeed(7)
	b.Reseed([]byte("fresh entropy"))
	if a.Uint64() == b.Uint64() {
		t.Fatal("reseed must alter the output stream")
	}
}

func TestGenerateRejectsOversizedRequest(t *testing.T) {
	d := NewFromSeed(1)
	if err := d.Generate(make([]byte, maxRequestBytes+1)); err == nil {
		t.Fatal("expected error for oversized request")
	}
}

func TestReadHandlesOversizedRequests(t *testing.T) {
	d := NewFromSeed(1)
	buf := make([]byte, maxRequestBytes*2+100)
	n, err := d.Read(buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("Read returned %d, want %d", n, len(buf))
	}
	// The tail must not be all zeros (probability ~0 for a working DRBG).
	allZero := true
	for _, v := range buf[len(buf)-32:] {
		if v != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		t.Fatal("tail of oversized read was never filled")
	}
}

func TestReadImplementsIOReader(t *testing.T) {
	var r io.Reader = NewFromSeed(3)
	buf := make([]byte, 16)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
}

func TestNewFromEntropy(t *testing.T) {
	a, err := NewFromEntropy()
	if err != nil {
		t.Fatalf("NewFromEntropy: %v", err)
	}
	b, err := NewFromEntropy()
	if err != nil {
		t.Fatalf("NewFromEntropy: %v", err)
	}
	if a.Uint64() == b.Uint64() {
		t.Fatal("two entropy-seeded generators should not collide on first draw")
	}
}

func TestIntnBounds(t *testing.T) {
	d := NewFromSeed(11)
	for _, n := range []int{1, 2, 3, 7, 16, 1000} {
		for i := 0; i < 200; i++ {
			v := d.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewFromSeed(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	d := NewFromSeed(13)
	for i := 0; i < 10000; i++ {
		v := d.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	d := NewFromSeed(17)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += d.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	d := NewFromSeed(19)
	const n = 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := d.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	d := NewFromSeed(23)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := d.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.03 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	d := NewFromSeed(29)
	for _, n := range []int{0, 1, 5, 64} {
		p := d.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		sorted := append([]int(nil), p...)
		sort.Ints(sorted)
		for i, v := range sorted {
			if v != i {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	d := NewFromSeed(31)
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	seen := map[int]bool{}
	d.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	for _, v := range vals {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", vals)
	}
}

func TestPoissonMean(t *testing.T) {
	d := NewFromSeed(37)
	for _, mean := range []float64{0.5, 3, 20, 150} {
		const n = 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(d.Poisson(mean))
		}
		got := sum / n
		tolerance := 4 * math.Sqrt(mean/float64(n)) * 2 // generous CLT bound
		if math.Abs(got-mean) > tolerance+0.05 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	d := NewFromSeed(41)
	if got := d.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := d.Poisson(-3); got != 0 {
		t.Fatalf("Poisson(-3) = %d, want 0", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := NewFromSeed(43)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				_ = d.Uint64()
			}
		}()
	}
	wg.Wait()
}

func TestQuickIntnAlwaysInRange(t *testing.T) {
	d := NewFromSeed(47)
	f := func(n uint16) bool {
		bound := int(n%1000) + 1
		v := d.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeterministicStreams(t *testing.T) {
	f := func(seed uint64) bool {
		a := NewFromSeed(seed)
		b := NewFromSeed(seed)
		for i := 0; i < 4; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBitBalance(t *testing.T) {
	d := NewFromSeed(53)
	buf := make([]byte, 1<<15)
	if _, err := d.Read(buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	ones := 0
	for _, b := range buf {
		for i := 0; i < 8; i++ {
			if b&(1<<i) != 0 {
				ones++
			}
		}
	}
	total := len(buf) * 8
	ratio := float64(ones) / float64(total)
	if math.Abs(ratio-0.5) > 0.01 {
		t.Fatalf("bit balance %v, want ~0.5", ratio)
	}
}
