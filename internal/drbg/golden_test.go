package drbg

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"testing"
)

// The golden checksums below pin the exact output stream of the DRBG across
// its whole API surface. The generator is the entropy source for every
// seeded experiment, so its stream is part of the reproducibility contract:
// any implementation change (including performance rewrites of the HMAC
// core) must keep these passing bit-for-bit.

func sumHex(b []byte) string {
	s := sha256.Sum256(b)
	return hex.EncodeToString(s[:])
}

func TestGoldenByteStream(t *testing.T) {
	cases := []struct {
		seed uint64
		n    int
		want string
	}{
		{seed: 1, n: 64, want: "6fa63e0451c6386d27949370cd963b1cc071e6a7c75051de876a79605f2eb5f0"},
		{seed: 1, n: 4096, want: "d4001a47727d314cd9eede2f956eb524451a41513e7718341bdfa5442bef92ba"},
		{seed: 2016, n: 1000, want: "ba8fa3c30b08a006aedeef750595ca3dce15c413f23a7a62d94fc7a9a1d1fe2e"},
	}
	for _, tc := range cases {
		d := NewFromSeed(tc.seed)
		buf := make([]byte, tc.n)
		if _, err := d.Read(buf); err != nil {
			t.Fatalf("Read: %v", err)
		}
		if got := sumHex(buf); got != tc.want {
			t.Errorf("seed %d n %d: stream checksum %s, want %s", tc.seed, tc.n, got, tc.want)
		}
	}
}

// TestGoldenGenerateCallBoundaries pins that the stream depends on the call
// pattern, not just total bytes: an update() runs between Generate calls, so
// 8×512 one-word draws differ from one 4096-byte draw. Any rewrite that
// batches draws through a buffer would break this (and the simulation).
func TestGoldenGenerateCallBoundaries(t *testing.T) {
	d := NewFromSeed(9)
	var acc []byte
	buf := make([]byte, 8)
	for i := 0; i < 512; i++ {
		if err := d.Generate(buf); err != nil {
			t.Fatalf("Generate: %v", err)
		}
		acc = append(acc, buf...)
	}
	if got, want := sumHex(acc), "d1c74354982110f53fb5ec1e46c926a61f786198c07e683d0ef4e1b472c1c566"; got != want {
		t.Errorf("8-byte call stream checksum %s, want %s", got, want)
	}
}

func TestGoldenPersonalizationAndReseed(t *testing.T) {
	d := New([]byte("seed-material"), "medsen-golden")
	buf := make([]byte, 96)
	if err := d.Generate(buf); err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if got, want := sumHex(buf), "ac56c8e2c55441d06d91c9048f6e37498335af49debeb02af8e6d1b2a0b394fd"; got != want {
		t.Errorf("personalized stream checksum %s, want %s", got, want)
	}
	d.Reseed([]byte("fresh entropy"))
	if err := d.Generate(buf); err != nil {
		t.Fatalf("Generate after Reseed: %v", err)
	}
	if got, want := sumHex(buf), "e7e26933a4920c6bebc0e3debc7fcdfac7fd0fd84554a3b72c42c5fd29173eff"; got != want {
		t.Errorf("post-reseed stream checksum %s, want %s", got, want)
	}
}

// TestGoldenDerivedDraws pins every derived-draw method: the simulation
// consumes the generator through these, so their consumption pattern (how
// many raw words each draw takes) is part of the contract too.
func TestGoldenDerivedDraws(t *testing.T) {
	d := NewFromSeed(77)
	h := sha256.New()
	w64 := func(v uint64) {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	for i := 0; i < 32; i++ {
		w64(d.Uint64())
	}
	for i := 0; i < 32; i++ {
		w64(uint64(d.Uint32()))
	}
	for i := 0; i < 64; i++ {
		w64(uint64(d.Intn(1000)))
	}
	for i := 0; i < 64; i++ {
		w64(math.Float64bits(d.Float64()))
	}
	for i := 0; i < 64; i++ {
		w64(math.Float64bits(d.NormFloat64()))
	}
	for i := 0; i < 64; i++ {
		w64(math.Float64bits(d.ExpFloat64()))
	}
	for i := 0; i < 32; i++ {
		if d.Bool() {
			w64(1)
		} else {
			w64(0)
		}
	}
	for _, mean := range []float64{0.5, 3, 20, 150} {
		for i := 0; i < 16; i++ {
			w64(uint64(d.Poisson(mean)))
		}
	}
	for _, v := range d.Perm(50) {
		w64(uint64(v))
	}
	vals := make([]int, 40)
	for i := range vals {
		vals[i] = i
	}
	d.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	for _, v := range vals {
		w64(uint64(v))
	}
	if got, want := hex.EncodeToString(h.Sum(nil)), "e2fbbb24b8b40df32fad7c6671343aba16de75a3816f1aa7e1d1ae8e5f6b2e1b"; got != want {
		t.Errorf("derived-draw checksum %s, want %s", got, want)
	}
}
