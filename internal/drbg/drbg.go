// Package drbg implements a deterministic random bit generator based on
// HMAC-SHA256, following the construction of NIST SP 800-90A (HMAC_DRBG).
//
// The generator plays the role of the /dev/random entropy source on the
// MedSen controller (the paper's Raspberry Pi): it feeds the keystream that
// drives electrode selection, per-electrode gains and flow-speed changes.
// Unlike /dev/random it is seedable, which makes every experiment in this
// repository replayable bit-for-bit; production callers seed it from
// crypto/rand via NewFromEntropy.
package drbg

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"math"
	"sync"
)

const (
	// seedLen is the HMAC-SHA256 output length; seeds of this size carry
	// full entropy through the Update function.
	seedLen = sha256.Size

	// maxRequestBytes bounds a single Generate call, per SP 800-90A
	// (2^16 bytes per request).
	maxRequestBytes = 1 << 16

	// reseedInterval is the number of Generate calls after which the
	// generator refuses to proceed without fresh entropy. SP 800-90A
	// allows 2^48; we keep the same bound.
	reseedInterval = 1 << 48
)

// ErrReseedRequired is returned by Generate when the reseed interval has
// been exhausted.
var ErrReseedRequired = errors.New("drbg: reseed required")

// DRBG is an HMAC-SHA256 deterministic random bit generator. It is safe for
// concurrent use. The zero value is not usable; construct with New or
// NewFromEntropy.
//
// The implementation replays exactly the HMAC state transitions of the
// textbook construction (hmac.New per call) but without its per-call cost:
// the generator feeds ~10⁵ draws per simulated acquisition, so the hot path
// keeps two persistent SHA-256 states and snapshots of the key's ipad/opad
// absorption, making a draw allocation-free (pinned by TestGenerateAllocFree)
// while leaving the output stream bit-identical (pinned by the golden tests).
type DRBG struct {
	mu      sync.Mutex
	key     [seedLen]byte
	v       [seedLen]byte
	counter uint64

	// inner and outer are the persistent SHA-256 states used for every
	// HMAC evaluation; ipadState/opadState are their serialized states
	// right after absorbing key⊕ipad / key⊕opad, recomputed by rekey()
	// whenever the key changes (once per Generate, twice per update with
	// provided data).
	inner, outer hash.Hash
	ipadState    []byte
	opadState    []byte
	sum          [seedLen]byte
	pad          [sha256.BlockSize]byte
}

// Snapshot/restore interfaces, asserted locally so the package builds on
// toolchains predating encoding.BinaryAppender (Go 1.24). SHA-256 states
// have implemented BinaryMarshaler/BinaryUnmarshaler since Go 1.8.
type binaryAppender interface {
	AppendBinary(b []byte) ([]byte, error)
}

type binaryMarshaler interface {
	MarshalBinary() ([]byte, error)
}

type binaryUnmarshaler interface {
	UnmarshalBinary(data []byte) error
}

// appendHashState serializes h's state into dst (reusing its capacity).
func appendHashState(dst []byte, h hash.Hash) []byte {
	if a, ok := h.(binaryAppender); ok {
		out, err := a.AppendBinary(dst)
		if err != nil {
			panic(fmt.Sprintf("drbg: snapshotting SHA-256 state: %v", err))
		}
		return out
	}
	m, ok := h.(binaryMarshaler)
	if !ok {
		panic("drbg: SHA-256 state does not support marshaling")
	}
	out, err := m.MarshalBinary()
	if err != nil {
		panic(fmt.Sprintf("drbg: snapshotting SHA-256 state: %v", err))
	}
	return append(dst, out...)
}

// restoreHashState rewinds h to a snapshot taken by appendHashState.
func restoreHashState(h hash.Hash, state []byte) {
	if err := h.(binaryUnmarshaler).UnmarshalBinary(state); err != nil {
		panic(fmt.Sprintf("drbg: restoring SHA-256 state: %v", err))
	}
}

// rekey recomputes the ipad/opad state snapshots for the current key. The
// key is exactly seedLen (< the SHA-256 block size), so the standard
// zero-padded XOR applies — the same path crypto/hmac takes for short keys.
func (d *DRBG) rekey() {
	// d.pad rather than a local: writing a stack array through the
	// hash.Hash interface would force it to escape, costing one heap
	// allocation per rekey.
	pad := &d.pad
	for i := range pad {
		pad[i] = 0x36
	}
	for i, b := range d.key {
		pad[i] ^= b
	}
	d.inner.Reset()
	d.inner.Write(pad[:])
	d.ipadState = appendHashState(d.ipadState[:0], d.inner)
	for i := range pad {
		pad[i] ^= 0x36 ^ 0x5c
	}
	d.outer.Reset()
	d.outer.Write(pad[:])
	d.opadState = appendHashState(d.opadState[:0], d.outer)
}

// hmacInto computes HMAC-SHA256(key, a‖b‖c) into out, where the key is the
// one captured by the last rekey. Nil segments are skipped. out may alias
// the inputs: every input byte is absorbed before out is written.
func (d *DRBG) hmacInto(out *[seedLen]byte, a, b, c []byte) {
	restoreHashState(d.inner, d.ipadState)
	d.inner.Write(a)
	if b != nil {
		d.inner.Write(b)
	}
	if c != nil {
		d.inner.Write(c)
	}
	d.inner.Sum(d.sum[:0])
	restoreHashState(d.outer, d.opadState)
	d.outer.Write(d.sum[:])
	d.outer.Sum(out[:0])
}

// New returns a DRBG seeded with the given seed material and an optional
// personalization string. The same (seed, personalization) pair always
// yields the same output stream.
func New(seed []byte, personalization string) *DRBG {
	d := &DRBG{
		inner: sha256.New(),
		outer: sha256.New(),
	}
	for i := range d.v {
		d.v[i] = 0x01
	}
	d.rekey() // snapshots for the all-zero initial key
	material := make([]byte, 0, len(seed)+len(personalization))
	material = append(material, seed...)
	material = append(material, personalization...)
	d.update(material)
	d.counter = 1
	return d
}

// NewFromSeed is a convenience constructor for simulation code that seeds
// from a 64-bit value.
func NewFromSeed(seed uint64) *DRBG {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], seed)
	return New(buf[:], "medsen-sim")
}

// NewFromEntropy seeds the generator from the operating system entropy pool
// (crypto/rand), mirroring the paper's use of /dev/random on the controller.
func NewFromEntropy() (*DRBG, error) {
	seed := make([]byte, seedLen)
	if _, err := rand.Read(seed); err != nil {
		return nil, fmt.Errorf("drbg: reading OS entropy: %w", err)
	}
	return New(seed, "medsen-controller"), nil
}

// Domain-separation bytes for update, hoisted so the hot path never
// materializes a fresh one-byte slice.
var (
	sepZero = []byte{0x00}
	sepOne  = []byte{0x01}
)

// update implements the HMAC_DRBG Update function from SP 800-90A §10.1.2.2.
func (d *DRBG) update(provided []byte) {
	d.hmacInto(&d.key, d.v[:], sepZero, provided)
	d.rekey()
	d.hmacInto(&d.v, d.v[:], nil, nil)

	if len(provided) == 0 {
		return
	}

	d.hmacInto(&d.key, d.v[:], sepOne, provided)
	d.rekey()
	d.hmacInto(&d.v, d.v[:], nil, nil)
}

// Reseed mixes fresh seed material into the generator state.
func (d *DRBG) Reseed(seed []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.update(seed)
	d.counter = 1
}

// Generate fills out with random bytes. It returns ErrReseedRequired once
// the reseed interval is exhausted and an error for oversized requests.
func (d *DRBG) Generate(out []byte) error {
	if len(out) > maxRequestBytes {
		return fmt.Errorf("drbg: request of %d bytes exceeds limit %d", len(out), maxRequestBytes)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.counter > reseedInterval {
		return ErrReseedRequired
	}
	offset := 0
	for offset < len(out) {
		d.hmacInto(&d.v, d.v[:], nil, nil)
		offset += copy(out[offset:], d.v[:])
	}
	d.update(nil)
	d.counter++
	return nil
}

// Read implements io.Reader. It never returns a short read unless the
// generator needs reseeding.
func (d *DRBG) Read(p []byte) (int, error) {
	// Split oversized reads into legal Generate requests.
	for off := 0; off < len(p); off += maxRequestBytes {
		end := off + maxRequestBytes
		if end > len(p) {
			end = len(p)
		}
		if err := d.Generate(p[off:end]); err != nil {
			return off, err
		}
	}
	return len(p), nil
}

// Uint64 returns a uniformly distributed 64-bit value. It panics only if the
// generator requires reseeding, which cannot happen within any realistic
// simulation run; the panic marks state corruption rather than a recoverable
// condition.
func (d *DRBG) Uint64() uint64 {
	var buf [8]byte
	if err := d.Generate(buf[:]); err != nil {
		panic(fmt.Sprintf("drbg: %v", err))
	}
	return binary.BigEndian.Uint64(buf[:])
}

// Uint32 returns a uniformly distributed 32-bit value.
func (d *DRBG) Uint32() uint32 {
	return uint32(d.Uint64() >> 32)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0, matching math/rand semantics.
func (d *DRBG) Intn(n int) int {
	if n <= 0 {
		panic("drbg: Intn called with non-positive n")
	}
	// Rejection sampling removes modulo bias.
	limit := math.MaxUint64 - (math.MaxUint64 % uint64(n))
	for {
		v := d.Uint64()
		if v < limit {
			return int(v % uint64(n))
		}
	}
}

// Float64 returns a uniformly distributed value in [0, 1).
func (d *DRBG) Float64() float64 {
	// 53 random bits scaled into [0,1), the same construction math/rand uses.
	return float64(d.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed value with mean 0 and standard
// deviation 1, using the Marsaglia polar method.
func (d *DRBG) NormFloat64() float64 {
	for {
		u := 2*d.Float64() - 1
		v := 2*d.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (d *DRBG) ExpFloat64() float64 {
	for {
		u := d.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (d *DRBG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := d.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function, as in math/rand.Shuffle.
func (d *DRBG) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("drbg: Shuffle called with negative n")
	}
	for i := n - 1; i > 0; i-- {
		swap(i, d.Intn(i+1))
	}
}

// Bool returns a uniformly distributed boolean.
func (d *DRBG) Bool() bool {
	return d.Uint64()&1 == 1
}

// Poisson draws from a Poisson distribution with the given mean using
// Knuth's method for small means and a normal approximation for large ones.
func (d *DRBG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation with continuity correction keeps the
		// draw O(1) for the dense samples used in long acquisitions.
		v := mean + math.Sqrt(mean)*d.NormFloat64() + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
	limit := math.Exp(-mean)
	product := d.Float64()
	n := 0
	for product > limit {
		product *= d.Float64()
		n++
	}
	return n
}
