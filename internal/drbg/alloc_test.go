package drbg

import "testing"

// The generator is the innermost loop of every simulated acquisition
// (~10⁵ draws per run), so its steady state must not allocate at all.
// These pins are the drbg-side counterpart of the detrend/peak alloc pins
// in internal/sigproc.

func TestGenerateAllocFree(t *testing.T) {
	d := NewFromSeed(1)
	buf := make([]byte, 8)
	if avg := testing.AllocsPerRun(200, func() {
		if err := d.Generate(buf); err != nil {
			t.Fatalf("Generate: %v", err)
		}
	}); avg != 0 {
		t.Errorf("Generate allocates %v per call, want 0", avg)
	}
}

func TestDerivedDrawsAllocFree(t *testing.T) {
	d := NewFromSeed(2)
	if avg := testing.AllocsPerRun(200, func() { d.Uint64() }); avg != 0 {
		t.Errorf("Uint64 allocates %v per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { d.NormFloat64() }); avg != 0 {
		t.Errorf("NormFloat64 allocates %v per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { d.Intn(17) }); avg != 0 {
		t.Errorf("Intn allocates %v per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { d.Poisson(20) }); avg != 0 {
		t.Errorf("Poisson allocates %v per call, want 0", avg)
	}
}

func BenchmarkUint64(b *testing.B) {
	d := NewFromSeed(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = d.Uint64()
	}
}

func BenchmarkGenerate256(b *testing.B) {
	d := NewFromSeed(1)
	buf := make([]byte, 256)
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if err := d.Generate(buf); err != nil {
			b.Fatalf("Generate: %v", err)
		}
	}
}
