package lockin

import (
	"math"
	"testing"

	"medsen/internal/sigproc"
)

// envelopeWithDip is a 1.0 baseline with a Gaussian dip, like a particle
// transit.
func envelopeWithDip(n int, rate, depth float64) sigproc.Trace {
	samples := make([]float64, n)
	center := n / 2
	sigmaSamples := rate * 0.005 // 5 ms dip
	for i := range samples {
		d := float64(i-center) / sigmaSamples
		samples[i] = 1 - depth*math.Exp(-0.5*d*d)
	}
	return sigproc.Trace{Rate: rate, Samples: samples}
}

func TestModulateDemodulateRecoversEnvelope(t *testing.T) {
	// Full carrier-level validation of the envelope abstraction: a 500 kHz
	// carrier sampled at 5 MHz carrying a 1% dip.
	const (
		carrierHz   = 500e3
		rawRateHz   = 5e6
		outRateHz   = 450.0
		excitationV = 1.0
		depth       = 0.01
	)
	env := envelopeWithDip(225, outRateHz, depth) // 0.5 s at the output rate

	raw, err := Modulate(env, carrierHz, rawRateHz, excitationV)
	if err != nil {
		t.Fatalf("Modulate: %v", err)
	}
	got, err := Demodulate(raw, carrierHz, 120, outRateHz, excitationV)
	if err != nil {
		t.Fatalf("Demodulate: %v", err)
	}

	// Baseline recovers near 1 (skip the filter settle-in).
	settle := 40
	for i := settle; i < len(got.Samples)/4; i++ {
		if math.Abs(got.Samples[i]-1) > 0.02 {
			t.Fatalf("baseline sample %d = %v, want ~1", i, got.Samples[i])
		}
	}
	// The dip survives demodulation with roughly its depth.
	min, _ := sigproc.MinMax(got.Samples[settle:])
	recovered := 1 - min
	if recovered < depth*0.5 || recovered > depth*1.3 {
		t.Fatalf("recovered dip depth %v, want ~%v", recovered, depth)
	}
}

func TestDemodulateRejectsWrongCarrier(t *testing.T) {
	// Demodulating at a far-off reference must not reproduce the
	// envelope: the mixing product lands outside the low-pass band.
	env := envelopeWithDip(225, 450, 0.01)
	raw, err := Modulate(env, 500e3, 5e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Demodulate(raw, 800e3, 120, 450, 1)
	if err != nil {
		t.Fatal(err)
	}
	mean := sigproc.Mean(got.Samples[40:])
	if mean > 0.2 {
		t.Fatalf("wrong-carrier output mean %v, want near 0 (rejected)", mean)
	}
}

func TestModulateValidation(t *testing.T) {
	env := envelopeWithDip(100, 450, 0.01)
	if _, err := Modulate(env, 0, 5e6, 1); err == nil {
		t.Error("expected error for zero carrier")
	}
	if _, err := Modulate(env, 500e3, 500e3, 1); err == nil {
		t.Error("expected Nyquist error")
	}
	if _, err := Modulate(sigproc.Trace{}, 500e3, 5e6, 1); err == nil {
		t.Error("expected error for empty envelope")
	}
}

func TestDemodulateValidation(t *testing.T) {
	raw := sigproc.Trace{Rate: 5e6, Samples: make([]float64, 1000)}
	if _, err := Demodulate(raw, 0, 120, 450, 1); err == nil {
		t.Error("expected error for zero carrier")
	}
	if _, err := Demodulate(raw, 500e3, 0, 450, 1); err == nil {
		t.Error("expected error for zero cutoff")
	}
	if _, err := Demodulate(raw, 500e3, 120, 0, 1); err == nil {
		t.Error("expected error for zero output rate")
	}
	if _, err := Demodulate(raw, 500e3, 120, 450, 0); err == nil {
		t.Error("expected error for zero excitation")
	}
	if _, err := Demodulate(sigproc.Trace{Rate: 100, Samples: raw.Samples}, 500e3, 120, 450, 1); err == nil {
		t.Error("expected Nyquist error")
	}
}
