package lockin

import (
	"fmt"
	"math"

	"medsen/internal/sigproc"
)

// Carrier-level modulation and demodulation. The rest of the package works
// at the envelope level — the demodulated output the HF2IS hands to the
// host — which is what the cloud pipeline consumes. This file implements
// the actual lock-in operation (§VI-D: "the electrical impedance
// measurement between the electrode pairs ... is modulated by the carrier
// frequencies. In recovering the signal measurement, the signal is
// demodulated by the same carrier frequencies") so tests can verify that
// the envelope abstraction is faithful: modulating an envelope onto a
// carrier and demodulating it recovers the envelope.

// Modulate mixes a baseband envelope onto an AC carrier: the current through
// the electrode pair is the excitation scaled by the (impedance-determined)
// envelope. rawRateHz is the simulated front-end sampling rate and must obey
// Nyquist for the carrier.
func Modulate(envelope sigproc.Trace, carrierHz, rawRateHz, excitationV float64) (sigproc.Trace, error) {
	if carrierHz <= 0 {
		return sigproc.Trace{}, fmt.Errorf("lockin: non-positive carrier %v", carrierHz)
	}
	if rawRateHz < 2*carrierHz {
		return sigproc.Trace{}, fmt.Errorf("lockin: raw rate %v below Nyquist for %v Hz", rawRateHz, carrierHz)
	}
	if envelope.Rate <= 0 || len(envelope.Samples) == 0 {
		return sigproc.Trace{}, fmt.Errorf("lockin: empty envelope")
	}
	durationS := envelope.Duration()
	n := int(durationS * rawRateHz)
	out := make([]float64, n)
	// Hoisted per-sample increments: the carrier phase advances by a fixed
	// omega per raw sample and the envelope index by a fixed rate ratio, so
	// the loop runs one multiply each instead of rebuilding 2π·f·t from
	// scratch.
	omega := 2 * math.Pi * carrierHz / rawRateHz
	rateRatio := envelope.Rate / rawRateHz
	for i := range out {
		// Sample-and-hold interpolation of the envelope is ample: the
		// envelope bandwidth (≤ 120 Hz) is far below the carrier.
		idx := int(float64(i) * rateRatio)
		if idx >= len(envelope.Samples) {
			idx = len(envelope.Samples) - 1
		}
		out[i] = excitationV * envelope.Samples[idx] * math.Sin(omega*float64(i))
	}
	return sigproc.Trace{Rate: rawRateHz, Samples: out}, nil
}

// Demodulate implements the dual-phase lock-in: multiply by quadrature
// references at the carrier, low-pass both products, and output the
// magnitude envelope resampled at outRateHz (450 Hz in the deployment).
func Demodulate(raw sigproc.Trace, carrierHz, cutoffHz, outRateHz, excitationV float64) (sigproc.Trace, error) {
	if carrierHz <= 0 || cutoffHz <= 0 || outRateHz <= 0 {
		return sigproc.Trace{}, fmt.Errorf("lockin: bad demodulation parameters")
	}
	if raw.Rate < 2*carrierHz {
		return sigproc.Trace{}, fmt.Errorf("lockin: raw rate %v below Nyquist for %v Hz", raw.Rate, carrierHz)
	}
	if excitationV <= 0 {
		return sigproc.Trace{}, fmt.Errorf("lockin: non-positive excitation %v", excitationV)
	}
	n := len(raw.Samples)
	inPhase := make([]float64, n)
	quadrature := make([]float64, n)
	// One Sincos per sample instead of a separate Sin and Cos, with the
	// phase increment hoisted out of the loop.
	omega := 2 * math.Pi * carrierHz / raw.Rate
	for i, v := range raw.Samples {
		sin, cos := math.Sincos(omega * float64(i))
		// ×2 restores unit gain: sin·sin averages to 1/2.
		inPhase[i] = 2 * v * sin
		quadrature[i] = 2 * v * cos
	}
	// Two cascaded single-pole stages steepen the roll-off around the
	// 2·carrier mixing images.
	i1 := sigproc.LowPass(sigproc.Trace{Rate: raw.Rate, Samples: inPhase}, cutoffHz)
	i1 = sigproc.LowPass(i1, cutoffHz)
	q1 := sigproc.LowPass(sigproc.Trace{Rate: raw.Rate, Samples: quadrature}, cutoffHz)
	q1 = sigproc.LowPass(q1, cutoffHz)

	outN := int(float64(n) / raw.Rate * outRateHz)
	out := make([]float64, outN)
	decimate := raw.Rate / outRateHz
	for i := range out {
		src := int(float64(i) * decimate)
		if src >= n {
			src = n - 1
		}
		out[i] = math.Hypot(i1.Samples[src], q1.Samples[src]) / excitationV
	}
	return sigproc.Trace{Rate: outRateHz, Samples: out}, nil
}
