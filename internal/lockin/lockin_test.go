package lockin

import (
	"math"
	"testing"

	"medsen/internal/drbg"
	"medsen/internal/electrode"
	"medsen/internal/microfluidic"
	"medsen/internal/sigproc"
)

func TestDefaultCarriersMatchPaper(t *testing.T) {
	want := []float64{500e3, 800e3, 1000e3, 1200e3, 1400e3, 2000e3, 3000e3, 4000e3}
	got := DefaultCarriersHz()
	if len(got) != 8 {
		t.Fatalf("expected the paper's 8 carriers, got %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("carrier %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.SampleRateHz = 0 },
		func(c *Config) { c.CutoffHz = 0 },
		func(c *Config) { c.CutoffHz = 300 }, // above Nyquist
		func(c *Config) { c.ExcitationV = 0 },
		func(c *Config) { c.NoiseSigma = -1 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func singlePulse(tS, amp, sigma float64) []electrode.Pulse {
	return []electrode.Pulse{{
		TimeS:     tS,
		Amplitude: amp,
		SigmaS:    sigma,
		Electrode: 0,
		Particle:  microfluidic.TypeBloodCell,
	}}
}

func TestRenderProducesDipAtPulseTime(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseSigma = 0
	cfg.Drift = Drift{}
	acq, err := Render([]float64{2e6}, [][]electrode.Pulse{singlePulse(1.0, 0.01, 0.005)}, 2.0, cfg, nil)
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	tr := acq.Traces[0]
	if len(tr.Samples) != 900 {
		t.Fatalf("trace length %d, want 900", len(tr.Samples))
	}
	minIdx := 0
	for i, v := range tr.Samples {
		if v < tr.Samples[minIdx] {
			minIdx = i
		}
	}
	if math.Abs(float64(minIdx)-450) > 3 {
		t.Fatalf("dip at sample %d, want ~450", minIdx)
	}
	depth := 1 - tr.Samples[minIdx]
	if depth < 0.006 || depth > 0.011 {
		t.Fatalf("dip depth %v, want near 0.01 (low-pass smears a little)", depth)
	}
}

func TestRenderBaselineNearOneWithoutDrift(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseSigma = 0
	cfg.Drift = Drift{}
	acq, err := Render([]float64{500e3}, [][]electrode.Pulse{nil}, 1.0, cfg, nil)
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	for i, v := range acq.Traces[0].Samples {
		if math.Abs(v-1) > 1e-9 {
			t.Fatalf("sample %d = %v, want 1.0", i, v)
		}
	}
}

func TestRenderDriftMovesBaseline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseSigma = 0
	cfg.Drift = Drift{LinearPerHour: -3.6} // -0.1% per second
	acq, err := Render([]float64{500e3}, [][]electrode.Pulse{nil}, 10, cfg, nil)
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	s := acq.Traces[0].Samples
	if s[len(s)-1] >= s[0] {
		t.Fatalf("baseline should decline: start %v end %v", s[0], s[len(s)-1])
	}
	if math.Abs((s[0]-s[len(s)-1])-0.01) > 0.002 {
		t.Fatalf("drift magnitude %v over 10 s, want ~0.01", s[0]-s[len(s)-1])
	}
}

func TestRenderNoiseLevel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Drift = Drift{}
	acq, err := Render([]float64{500e3}, [][]electrode.Pulse{nil}, 20, cfg, drbg.NewFromSeed(9))
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	sd := sigproc.StdDev(acq.Traces[0].Samples)
	// The 120 Hz low-pass attenuates white noise; the floor should be
	// below the raw sigma but clearly non-zero.
	if sd <= 0 {
		t.Fatal("expected non-zero noise floor")
	}
	if sd >= cfg.NoiseSigma {
		t.Fatalf("filtered noise %v should be below raw sigma %v", sd, cfg.NoiseSigma)
	}
}

func TestRenderDeterministicWithSeed(t *testing.T) {
	cfg := DefaultConfig()
	pulses := [][]electrode.Pulse{singlePulse(0.5, 0.005, 0.005)}
	a, err := Render([]float64{2e6}, pulses, 1, cfg, drbg.NewFromSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Render([]float64{2e6}, pulses, 1, cfg, drbg.NewFromSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Traces[0].Samples {
		if a.Traces[0].Samples[i] != b.Traces[0].Samples[i] {
			t.Fatal("renders with equal seeds must match")
		}
	}
}

func TestRenderMultiCarrier(t *testing.T) {
	carriers := DefaultCarriersHz()
	pulses := make([][]electrode.Pulse, len(carriers))
	arr := electrode.MustArray(9)
	tr := microfluidic.Transit{Type: microfluidic.TypeBloodCell, EntryS: 0.4, VelocityUmS: 2200}
	active := []bool{true, false, false, false, false, false, false, false, false}
	for i, f := range carriers {
		pulses[i] = arr.PulsesForTransit(tr, f, active, nil, 1)
	}
	cfg := DefaultConfig()
	cfg.NoiseSigma = 0
	cfg.Drift = Drift{}
	acq, err := Render(carriers, pulses, 1, cfg, nil)
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	if len(acq.Traces) != 8 {
		t.Fatalf("got %d traces", len(acq.Traces))
	}
	// Blood-cell dip must be shallower at 3 MHz than at 500 kHz (Fig. 15a).
	depth := func(trc sigproc.Trace) float64 {
		min, _ := sigproc.MinMax(trc.Samples)
		return 1 - min
	}
	c500, err := acq.Channel(500e3)
	if err != nil {
		t.Fatal(err)
	}
	c3000, err := acq.Channel(3000e3)
	if err != nil {
		t.Fatal(err)
	}
	if depth(c3000) >= depth(c500) {
		t.Fatalf("3 MHz depth %v should be below 500 kHz depth %v", depth(c3000), depth(c500))
	}
	if _, err := acq.Channel(123); err == nil {
		t.Fatal("expected error for unknown carrier")
	}
}

func TestRenderErrors(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := Render(nil, nil, 1, cfg, nil); err == nil {
		t.Error("expected error for no carriers")
	}
	if _, err := Render([]float64{1e6}, nil, 1, cfg, nil); err == nil {
		t.Error("expected error for mismatched pulse lists")
	}
	if _, err := Render([]float64{1e6}, [][]electrode.Pulse{nil}, 0, cfg, nil); err == nil {
		t.Error("expected error for zero duration")
	}
	if _, err := Render([]float64{1e6}, [][]electrode.Pulse{nil}, 0.0001, cfg, nil); err == nil {
		t.Error("expected error for sub-sample duration")
	}
	bad := cfg
	bad.SampleRateHz = -1
	if _, err := Render([]float64{1e6}, [][]electrode.Pulse{nil}, 1, bad, nil); err == nil {
		t.Error("expected config validation error")
	}
}

func TestAcquisitionDuration(t *testing.T) {
	if (Acquisition{}).Duration() != 0 {
		t.Fatal("empty acquisition duration should be 0")
	}
	cfg := DefaultConfig()
	acq, err := Render([]float64{1e6}, [][]electrode.Pulse{nil}, 3, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acq.Duration()-3) > 0.01 {
		t.Fatalf("duration %v, want 3", acq.Duration())
	}
}

func TestRenderPulseAtEdgeDoesNotPanic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseSigma = 0
	pulses := []electrode.Pulse{
		{TimeS: -0.01, Amplitude: 0.01, SigmaS: 0.005},
		{TimeS: 0.999, Amplitude: 0.01, SigmaS: 0.005},
		{TimeS: 5.0, Amplitude: 0.01, SigmaS: 0.005}, // beyond window
		{TimeS: 0.5, Amplitude: 0.01, SigmaS: 0},     // degenerate sigma
	}
	if _, err := Render([]float64{1e6}, [][]electrode.Pulse{pulses}, 1, cfg, nil); err != nil {
		t.Fatalf("Render: %v", err)
	}
}
