// Package lockin models the data-acquisition chain of §VI-D: a multi-carrier
// impedance spectroscope (the paper's Zurich Instruments HF2IS) driving the
// electrode array with up to eight simultaneous AC carriers, demodulating
// the output current per carrier, low-pass filtering at 120 Hz and sampling
// the demodulated envelope at 450 Hz.
//
// The package renders the pulse events produced by the electrode model into
// normalized voltage traces with the baseline drift (fluid concentration and
// temperature, §VI-C) and front-end noise a real acquisition exhibits, so
// the cloud pipeline must genuinely detrend and threshold to recover peaks.
package lockin

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"medsen/internal/drbg"
	"medsen/internal/electrode"
	"medsen/internal/sigproc"
)

// DefaultCarriersHz returns the paper's excitation carrier set:
// [500, 800, 1000, 1200, 1400, 2000, 3000, 4000] kHz (§VI-D).
func DefaultCarriersHz() []float64 {
	return []float64{500e3, 800e3, 1000e3, 1200e3, 1400e3, 2000e3, 3000e3, 4000e3}
}

// Config holds the acquisition parameters of §VI-D.
type Config struct {
	// SampleRateHz is the demodulated output sampling rate (450 Hz).
	SampleRateHz float64
	// CutoffHz is the output low-pass filter corner (120 Hz).
	CutoffHz float64
	// ExcitationV is the per-carrier excitation amplitude (1 V).
	ExcitationV float64
	// NoiseSigma is the standard deviation of additive front-end noise on
	// the normalized output.
	NoiseSigma float64
	// Drift configures the slow baseline wander the cloud must detrend.
	Drift Drift
}

// Drift models the slow baseline changes of §VI-C: fluid concentration
// changes over long acquisitions and temperature drift. Magnitudes are
// relative to the normalized baseline of 1.0, per hour of acquisition.
type Drift struct {
	// LinearPerHour is the linear baseline slope.
	LinearPerHour float64
	// QuadraticPerHour2 is the quadratic term coefficient.
	QuadraticPerHour2 float64
	// WaveAmplitude and WavePeriodS add a slow sinusoidal component
	// (e.g. room-temperature regulation cycles).
	WaveAmplitude float64
	WavePeriodS   float64
}

// DefaultConfig returns the paper's acquisition settings with calibrated
// noise and drift levels.
func DefaultConfig() Config {
	return Config{
		SampleRateHz: 450,
		CutoffHz:     120,
		ExcitationV:  1.0,
		NoiseSigma:   0.00025,
		Drift: Drift{
			LinearPerHour:     -0.04,
			QuadraticPerHour2: 0.01,
			WaveAmplitude:     0.002,
			WavePeriodS:       240,
		},
	}
}

// Validate checks the acquisition configuration.
func (c Config) Validate() error {
	if c.SampleRateHz <= 0 {
		return fmt.Errorf("lockin: non-positive sample rate %v", c.SampleRateHz)
	}
	if c.CutoffHz <= 0 || c.CutoffHz >= c.SampleRateHz/2 {
		return fmt.Errorf("lockin: cutoff %v must be in (0, Nyquist=%v)", c.CutoffHz, c.SampleRateHz/2)
	}
	if c.ExcitationV <= 0 {
		return fmt.Errorf("lockin: non-positive excitation %v", c.ExcitationV)
	}
	if c.NoiseSigma < 0 {
		return fmt.Errorf("lockin: negative noise sigma %v", c.NoiseSigma)
	}
	return nil
}

// baselineAt evaluates the drift model at time t.
func (d Drift) baselineAt(tS float64) float64 {
	h := tS / 3600
	b := 1 + d.LinearPerHour*h + d.QuadraticPerHour2*h*h
	if d.WaveAmplitude != 0 && d.WavePeriodS > 0 {
		b += d.WaveAmplitude * math.Sin(2*math.Pi*tS/d.WavePeriodS)
	}
	return b
}

// Acquisition is a multi-carrier capture: one demodulated trace per
// excitation carrier, all sharing the same clock.
type Acquisition struct {
	// CarriersHz lists the excitation frequencies, index-aligned with
	// Traces.
	CarriersHz []float64
	// Traces holds one normalized demodulated trace per carrier.
	Traces []sigproc.Trace
}

// Channel returns the trace for the given carrier frequency.
func (a Acquisition) Channel(freqHz float64) (sigproc.Trace, error) {
	for i, f := range a.CarriersHz {
		if f == freqHz {
			return a.Traces[i], nil
		}
	}
	return sigproc.Trace{}, fmt.Errorf("lockin: no channel at %v Hz (have %v)", freqHz, a.CarriersHz)
}

// Duration returns the capture length in seconds (0 for an empty capture).
func (a Acquisition) Duration() float64 {
	if len(a.Traces) == 0 {
		return 0
	}
	return a.Traces[0].Duration()
}

// renderScratch holds the per-render working memory that never escapes:
// the shared drift baseline and the pre-drawn noise arena. Pooled contents
// are fully overwritten before every use (DESIGN.md §6 rule 1).
type renderScratch struct {
	baseline []float64
	noise    []float64
}

var renderPool = sync.Pool{New: func() any { return new(renderScratch) }}

// growFloats returns s resized to n, reusing its backing array when large
// enough. Contents are unspecified; callers overwrite every element.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Render converts per-carrier pulse event lists into a sampled multi-carrier
// acquisition. pulsesByCarrier[i] holds the voltage-drop events for
// carriersHz[i]; durationS is the capture window. rng supplies front-end
// noise and may be nil for a noiseless render (unit tests, ground truth).
func Render(
	carriersHz []float64,
	pulsesByCarrier [][]electrode.Pulse,
	durationS float64,
	cfg Config,
	rng *drbg.DRBG,
) (Acquisition, error) {
	return RenderWorkers(carriersHz, pulsesByCarrier, durationS, cfg, rng, 1)
}

// RenderWorkers is Render with explicit carrier-level parallelism: workers
// caps the number of goroutines synthesizing carriers (0 = GOMAXPROCS,
// 1 = serial). Every worker count produces bitwise-identical traces: the
// front-end noise — the only DRBG consumer — is drawn serially into an
// arena in carrier order first, and each carrier's synthesis then runs
// independently over disjoint output slices with the exact arithmetic of
// the serial path.
func RenderWorkers(
	carriersHz []float64,
	pulsesByCarrier [][]electrode.Pulse,
	durationS float64,
	cfg Config,
	rng *drbg.DRBG,
	workers int,
) (Acquisition, error) {
	if err := cfg.Validate(); err != nil {
		return Acquisition{}, err
	}
	if len(carriersHz) == 0 {
		return Acquisition{}, fmt.Errorf("lockin: no carriers")
	}
	if len(pulsesByCarrier) != len(carriersHz) {
		return Acquisition{}, fmt.Errorf("lockin: %d pulse lists for %d carriers",
			len(pulsesByCarrier), len(carriersHz))
	}
	if durationS <= 0 {
		return Acquisition{}, fmt.Errorf("lockin: non-positive duration %v", durationS)
	}
	n := int(durationS * cfg.SampleRateHz)
	if n < 1 {
		return Acquisition{}, fmt.Errorf("lockin: duration %v too short for rate %v", durationS, cfg.SampleRateHz)
	}

	nc := len(carriersHz)
	acq := Acquisition{
		CarriersHz: append([]float64(nil), carriersHz...),
		Traces:     make([]sigproc.Trace, nc),
	}
	// One backing array serves every carrier's output trace: the traces
	// are results (they outlive the call), but nc allocations collapse
	// into one and the samples stay cache-adjacent.
	backing := make([]float64, nc*n)

	scratch := renderPool.Get().(*renderScratch)
	defer renderPool.Put(scratch)

	// The drift baseline depends only on the sample clock, which every
	// carrier shares: evaluate it once and seed each carrier with a copy
	// (bitwise identical to evaluating per carrier, at 1/len(carriers) the
	// trig cost).
	scratch.baseline = growFloats(scratch.baseline, n)
	baseline := scratch.baseline
	for i := range baseline {
		baseline[i] = cfg.Drift.baselineAt(float64(i) / cfg.SampleRateHz)
	}

	// Front-end noise is the only DRBG consumer in the render: draw it
	// serially, in carrier order, so the stream consumption (and thus the
	// output) is identical for every worker count.
	withNoise := rng != nil && cfg.NoiseSigma > 0
	var noise []float64
	if withNoise {
		scratch.noise = growFloats(scratch.noise, nc*n)
		noise = scratch.noise
		for i := range noise {
			noise[i] = rng.NormFloat64()
		}
	}

	renderCarrier := func(ci int) {
		samples := backing[ci*n : (ci+1)*n : (ci+1)*n]
		copy(samples, baseline)
		// Superimpose Gaussian dips; each pulse touches only ±4σ.
		for _, p := range pulsesByCarrier[ci] {
			if p.SigmaS <= 0 {
				continue
			}
			lo := int((p.TimeS - 4*p.SigmaS) * cfg.SampleRateHz)
			hi := int((p.TimeS+4*p.SigmaS)*cfg.SampleRateHz) + 1
			if lo < 0 {
				lo = 0
			}
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				t := float64(i) / cfg.SampleRateHz
				d := (t - p.TimeS) / p.SigmaS
				samples[i] -= p.Amplitude * math.Exp(-0.5*d*d) * samples[i]
			}
		}
		// Front-end noise after demodulation, from the pre-drawn arena.
		if withNoise {
			cn := noise[ci*n : (ci+1)*n]
			for i := range samples {
				samples[i] += cfg.NoiseSigma * cn[i]
			}
		}
		tr := sigproc.Trace{Rate: cfg.SampleRateHz, Samples: samples}
		// The output low-pass filter shapes the noise floor.
		sigproc.LowPassInPlace(tr, cfg.CutoffHz)
		acq.Traces[ci] = tr
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nc {
		workers = nc
	}
	if workers <= 1 {
		for ci := 0; ci < nc; ci++ {
			renderCarrier(ci)
		}
		return acq, nil
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ci := w; ci < nc; ci += workers {
				renderCarrier(ci)
			}
		}(w)
	}
	wg.Wait()
	return acq, nil
}
