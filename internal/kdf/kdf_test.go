package kdf

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// Published PBKDF2-HMAC-SHA256 test vectors (widely cross-checked against
// OpenSSL and Python hashlib).
func TestKnownVectors(t *testing.T) {
	cases := []struct {
		password string
		salt     string
		iter     int
		keyLen   int
		want     string
	}{
		{
			"password", "salt", 1, 32,
			"120fb6cffcf8b32c43e7225256c4f837a86548c92ccc35480805987cb70be17b",
		},
		{
			"password", "salt", 2, 32,
			"ae4d0c95af6b46d32d0adff928f06dd02a303f8ef3c251dfd6e2d85a95474c43",
		},
		{
			"password", "salt", 4096, 32,
			"c5e478d59288c841aa530db6845c4c8d962893a001ce4e11a4963873aa98134a",
		},
		{
			"passwordPASSWORDpassword", "saltSALTsaltSALTsaltSALTsaltSALTsalt", 4096, 40,
			"348c89dbcbd32b2f32d814b8116e84cf2b17347ebc1800181c4e2a1fb8dd53e1c635518c7dac47e9",
		},
	}
	for i, tc := range cases {
		got := PBKDF2SHA256([]byte(tc.password), []byte(tc.salt), tc.iter, tc.keyLen)
		want, err := hex.DecodeString(tc.want)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("vector %d: got %x, want %s", i, got, tc.want)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := PBKDF2SHA256([]byte("pw"), []byte("s"), 100, 64)
	b := PBKDF2SHA256([]byte("pw"), []byte("s"), 100, 64)
	if !bytes.Equal(a, b) {
		t.Fatal("PBKDF2 must be deterministic")
	}
}

func TestDifferentInputsDiffer(t *testing.T) {
	base := PBKDF2SHA256([]byte("pw"), []byte("s"), 100, 32)
	if bytes.Equal(base, PBKDF2SHA256([]byte("pw2"), []byte("s"), 100, 32)) {
		t.Error("different passwords must differ")
	}
	if bytes.Equal(base, PBKDF2SHA256([]byte("pw"), []byte("s2"), 100, 32)) {
		t.Error("different salts must differ")
	}
	if bytes.Equal(base, PBKDF2SHA256([]byte("pw"), []byte("s"), 101, 32)) {
		t.Error("different iteration counts must differ")
	}
}

func TestKeyLengths(t *testing.T) {
	for _, n := range []int{1, 16, 32, 33, 64, 100} {
		if got := PBKDF2SHA256([]byte("pw"), []byte("s"), 2, n); len(got) != n {
			t.Errorf("keyLen %d: got %d bytes", n, len(got))
		}
	}
	if got := PBKDF2SHA256([]byte("pw"), []byte("s"), 2, 0); got != nil {
		t.Error("zero keyLen should return nil")
	}
	if got := PBKDF2SHA256([]byte("pw"), []byte("s"), 2, -1); got != nil {
		t.Error("negative keyLen should return nil")
	}
}

func TestNonPositiveIterationsClamped(t *testing.T) {
	a := PBKDF2SHA256([]byte("pw"), []byte("s"), 0, 32)
	b := PBKDF2SHA256([]byte("pw"), []byte("s"), 1, 32)
	if !bytes.Equal(a, b) {
		t.Fatal("iterations < 1 should behave as 1")
	}
}

func TestQuickPrefixConsistency(t *testing.T) {
	// Block structure: a longer key must extend a shorter one, never
	// change its prefix.
	f := func(pw, salt []byte) bool {
		short := PBKDF2SHA256(pw, salt, 3, 16)
		long := PBKDF2SHA256(pw, salt, 3, 48)
		return bytes.Equal(short, long[:16])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
