// Package kdf implements PBKDF2 with HMAC-SHA256 (RFC 8018 §5.2), used to
// derive key-wrapping keys from practitioner passphrases when a patient
// shares an acquisition's key schedule with a trusted party (§VII-B:
// "MedSen's design also allows sharing of the generated keys with trusted
// parties, e.g., the patient's practitioners, so that they could also access
// the cloud-based analysis outcomes remotely").
package kdf

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
)

// DefaultIterations is the interactive-use PBKDF2 cost.
const DefaultIterations = 16384

// PBKDF2SHA256 derives keyLen bytes from the password and salt using the
// given iteration count.
func PBKDF2SHA256(password, salt []byte, iterations, keyLen int) []byte {
	if iterations < 1 {
		iterations = 1
	}
	if keyLen <= 0 {
		return nil
	}
	hashLen := sha256.Size
	numBlocks := (keyLen + hashLen - 1) / hashLen
	dk := make([]byte, 0, numBlocks*hashLen)

	var blockIndex [4]byte
	for block := 1; block <= numBlocks; block++ {
		binary.BigEndian.PutUint32(blockIndex[:], uint32(block))

		mac := hmac.New(sha256.New, password)
		mac.Write(salt)
		mac.Write(blockIndex[:])
		u := mac.Sum(nil)

		t := make([]byte, hashLen)
		copy(t, u)
		for i := 1; i < iterations; i++ {
			mac = hmac.New(sha256.New, password)
			mac.Write(u)
			u = mac.Sum(nil)
			for j := range t {
				t[j] ^= u[j]
			}
		}
		dk = append(dk, t...)
	}
	return dk[:keyLen]
}
