// Command medsen-bench regenerates the paper's evaluation: every figure
// (7, 8, 11–16), the in-text numbers (Eq. 2 key sizing, §VII-B compression,
// the ~0.2 s end-to-end time, §VII-C authentication accuracy) and the
// ablation studies listed in DESIGN.md.
//
// Usage:
//
//	medsen-bench                 # everything, full scale
//	medsen-bench -quick          # everything, test scale
//	medsen-bench -fig 12         # one figure
//	medsen-bench -exp e2e        # one in-text experiment
//	medsen-bench -exp ablations  # the ablation suite
package main

import (
	"flag"
	"fmt"
	"os"

	"medsen/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		fig   = flag.String("fig", "", "figure to regenerate: 5, 7, 8, 11, 12, 13, 14, 15, 16 (empty = all)")
		exp   = flag.String("exp", "", "experiment: keysize, compression, e2e, repeatability, auth, ablations (empty = all)")
		quick = flag.Bool("quick", false, "test-scale workloads")
		seed  = flag.Uint64("seed", 2016, "deterministic experiment seed")
	)
	flag.Parse()

	o := experiments.Options{Seed: *seed, Quick: *quick}
	if err := runSelection(o, *fig, *exp); err != nil {
		fmt.Fprintf(os.Stderr, "medsen-bench: %v\n", err)
		return 1
	}
	return 0
}

func runSelection(o experiments.Options, fig, exp string) error {
	all := fig == "" && exp == ""
	w := os.Stdout

	figures := map[string]func() error{
		"5": func() error {
			r, err := experiments.DesignComparison(o)
			if err != nil {
				return err
			}
			experiments.PrintDesignComparison(w, r)
			return nil
		},
		"7": func() error {
			r, err := experiments.Fig07SingleCellDrop(o)
			if err != nil {
				return err
			}
			experiments.PrintFig07(w, r)
			return nil
		},
		"8": func() error {
			r, err := experiments.Fig08FivePeakSignature(o)
			if err != nil {
				return err
			}
			experiments.PrintFig08(w, r)
			return nil
		},
		"11": func() error {
			r, err := experiments.Fig11EncryptedSignatures(o)
			if err != nil {
				return err
			}
			experiments.PrintFig11(w, r)
			return nil
		},
		"12": func() error {
			r, err := experiments.Fig12BeadCounts780(o)
			if err != nil {
				return err
			}
			experiments.PrintCountSweep(w, "Fig. 12", r)
			return nil
		},
		"13": func() error {
			r, err := experiments.Fig13BeadCounts358(o)
			if err != nil {
				return err
			}
			experiments.PrintCountSweep(w, "Fig. 13", r)
			return nil
		},
		"14": func() error {
			r, err := experiments.Fig14PeakAnalysisPerformance(o)
			if err != nil {
				return err
			}
			experiments.PrintFig14(w, r)
			return nil
		},
		"15": func() error {
			r, err := experiments.Fig15ImpedanceSpectra(o)
			if err != nil {
				return err
			}
			experiments.PrintFig15(w, r)
			return nil
		},
		"16": func() error {
			r, err := experiments.Fig16Clusters(o)
			if err != nil {
				return err
			}
			experiments.PrintFig16(w, r)
			return nil
		},
	}
	exps := map[string]func() error{
		"keysize": func() error {
			r, err := experiments.KeySizeAccounting(o)
			if err != nil {
				return err
			}
			experiments.PrintKeySize(w, r)
			return nil
		},
		"compression": func() error {
			r, err := experiments.CompressionExperiment(o)
			if err != nil {
				return err
			}
			experiments.PrintCompression(w, r)
			return nil
		},
		"e2e": func() error {
			r, err := experiments.EndToEndTiming(o)
			if err != nil {
				return err
			}
			experiments.PrintEndToEnd(w, r)
			return nil
		},
		"repeatability": func() error {
			r, err := experiments.Repeatability(o)
			if err != nil {
				return err
			}
			experiments.PrintRepeatability(w, r)
			return nil
		},
		"auth": func() error {
			r, err := experiments.AuthAccuracy(o)
			if err != nil {
				return err
			}
			experiments.PrintAuthAccuracy(w, r)
			return nil
		},
		"ablations": func() error {
			return experiments.PrintAblations(w, o)
		},
	}

	runOne := func(kind, key string, table map[string]func() error) error {
		fn, ok := table[key]
		if !ok {
			return fmt.Errorf("unknown %s %q", kind, key)
		}
		if err := fn(); err != nil {
			return fmt.Errorf("%s %s: %w", kind, key, err)
		}
		fmt.Fprintln(w)
		return nil
	}

	if !all {
		if fig != "" {
			return runOne("figure", fig, figures)
		}
		return runOne("experiment", exp, exps)
	}
	for _, key := range []string{"5", "7", "8", "11", "12", "13", "14", "15", "16"} {
		if err := runOne("figure", key, figures); err != nil {
			return err
		}
	}
	for _, key := range []string{"keysize", "compression", "e2e", "repeatability", "auth", "ablations"} {
		if err := runOne("experiment", key, exps); err != nil {
			return err
		}
	}
	return nil
}
