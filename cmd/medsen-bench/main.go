// Command medsen-bench regenerates the paper's evaluation: every figure
// (7, 8, 11–16), the in-text numbers (Eq. 2 key sizing, §VII-B compression,
// the ~0.2 s end-to-end time, §VII-C authentication accuracy) and the
// ablation studies listed in DESIGN.md.
//
// It doubles as the performance-regression harness: -json runs the
// hot-path benchmark suite (internal/benchharness) and writes the
// machine-readable BENCH_5.json format, and -compare gates a run against a
// committed baseline, exiting non-zero on any regression beyond the
// thresholds.
//
// Usage:
//
//	medsen-bench                 # everything, full scale
//	medsen-bench -quick          # everything, test scale
//	medsen-bench -fig 12         # one figure
//	medsen-bench -exp e2e        # one in-text experiment
//	medsen-bench -exp ablations  # the ablation suite
//	medsen-bench -json BENCH_5.json            # record a perf baseline
//	medsen-bench -compare BENCH_5.json         # rerun and gate against it
//	medsen-bench -compare BASE -current CUR    # pure file-vs-file gate
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"medsen/internal/benchharness"
	"medsen/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		fig   = flag.String("fig", "", "figure to regenerate: 5, 7, 8, 11, 12, 13, 14, 15, 16 (empty = all)")
		exp   = flag.String("exp", "", "experiment: keysize, compression, e2e, repeatability, auth, ablations (empty = all)")
		quick = flag.Bool("quick", false, "test-scale workloads")
		seed  = flag.Uint64("seed", 2016, "deterministic experiment seed")

		jsonOut     = flag.String("json", "", "run the perf harness and write machine-readable results to FILE (\"-\" = stdout)")
		compareFile = flag.String("compare", "", "compare against baseline FILE; exit non-zero on regression")
		currentFile = flag.String("current", "", "with -compare: read current results from FILE instead of running the harness")
		benchFilter = flag.String("bench-filter", "", "run only harness benchmarks whose name starts with this prefix")
		benchTime   = flag.Duration("bench-time", 0, "per-benchmark measuring time for the harness (0 = testing default of 1s)")
		thNs        = flag.Float64("threshold-ns", benchharness.DefaultThresholds().NsPct, "allowed ns/op growth percent before -compare fails")
		thAllocs    = flag.Float64("threshold-allocs", benchharness.DefaultThresholds().AllocsPct, "allowed allocs/op growth percent before -compare fails")
		thBytes     = flag.Float64("threshold-bytes", benchharness.DefaultThresholds().BytesPct, "allowed B/op growth percent before -compare fails")
	)
	flag.Parse()

	if *jsonOut != "" || *compareFile != "" {
		th := benchharness.Thresholds{NsPct: *thNs, AllocsPct: *thAllocs, BytesPct: *thBytes}
		err := runHarness(harnessConfig{
			jsonOut:     *jsonOut,
			compareFile: *compareFile,
			currentFile: *currentFile,
			filter:      *benchFilter,
			benchTime:   *benchTime,
			thresholds:  th,
		}, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "medsen-bench: %v\n", err)
			return 1
		}
		return 0
	}

	o := experiments.Options{Seed: *seed, Quick: *quick}
	if err := runSelection(o, *fig, *exp); err != nil {
		fmt.Fprintf(os.Stderr, "medsen-bench: %v\n", err)
		return 1
	}
	return 0
}

// harnessConfig bundles the perf-harness invocation.
type harnessConfig struct {
	jsonOut     string
	compareFile string
	currentFile string
	filter      string
	benchTime   time.Duration
	thresholds  benchharness.Thresholds
}

// runHarness obtains the current suite (from -current, or by running the
// benchmarks), optionally records it, and optionally gates it against a
// baseline. A regression is an error so the process exits non-zero — the CI
// contract.
func runHarness(cfg harnessConfig, stdout io.Writer) error {
	var current benchharness.Suite
	var err error
	if cfg.currentFile != "" {
		current, err = readSuite(cfg.currentFile)
	} else {
		current, err = benchharness.Run(benchharness.Options{Filter: cfg.filter, BenchTime: cfg.benchTime})
	}
	if err != nil {
		return err
	}

	if cfg.jsonOut != "" {
		if cfg.jsonOut == "-" {
			if err := current.WriteJSON(stdout); err != nil {
				return err
			}
		} else {
			f, err := os.Create(cfg.jsonOut)
			if err != nil {
				return fmt.Errorf("creating %s: %w", cfg.jsonOut, err)
			}
			werr := current.WriteJSON(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return fmt.Errorf("writing %s: %w", cfg.jsonOut, werr)
			}
			fmt.Fprintf(stdout, "wrote %d benchmark results to %s\n", len(current.Results), cfg.jsonOut)
		}
	}

	if cfg.compareFile == "" {
		// Skip the table when the JSON already went to stdout.
		if cfg.jsonOut != "-" {
			current.FormatTable(stdout)
		}
		return nil
	}
	baseline, err := readSuite(cfg.compareFile)
	if err != nil {
		return err
	}
	regs := benchharness.Compare(baseline, current, cfg.thresholds)
	current.FormatTable(stdout)
	if len(regs) == 0 {
		fmt.Fprintf(stdout, "no regressions against %s (thresholds: ns %.0f%%, allocs %.0f%%, B %.0f%%)\n",
			cfg.compareFile, cfg.thresholds.NsPct, cfg.thresholds.AllocsPct, cfg.thresholds.BytesPct)
		return nil
	}
	for _, r := range regs {
		fmt.Fprintln(stdout, r)
	}
	return fmt.Errorf("%d benchmark metric(s) regressed against %s", len(regs), cfg.compareFile)
}

func readSuite(path string) (benchharness.Suite, error) {
	f, err := os.Open(path)
	if err != nil {
		return benchharness.Suite{}, fmt.Errorf("opening %s: %w", path, err)
	}
	defer f.Close()
	s, err := benchharness.ReadJSON(f)
	if err != nil {
		return benchharness.Suite{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func runSelection(o experiments.Options, fig, exp string) error {
	all := fig == "" && exp == ""
	w := os.Stdout

	figures := map[string]func() error{
		"5": func() error {
			r, err := experiments.DesignComparison(o)
			if err != nil {
				return err
			}
			experiments.PrintDesignComparison(w, r)
			return nil
		},
		"7": func() error {
			r, err := experiments.Fig07SingleCellDrop(o)
			if err != nil {
				return err
			}
			experiments.PrintFig07(w, r)
			return nil
		},
		"8": func() error {
			r, err := experiments.Fig08FivePeakSignature(o)
			if err != nil {
				return err
			}
			experiments.PrintFig08(w, r)
			return nil
		},
		"11": func() error {
			r, err := experiments.Fig11EncryptedSignatures(o)
			if err != nil {
				return err
			}
			experiments.PrintFig11(w, r)
			return nil
		},
		"12": func() error {
			r, err := experiments.Fig12BeadCounts780(o)
			if err != nil {
				return err
			}
			experiments.PrintCountSweep(w, "Fig. 12", r)
			return nil
		},
		"13": func() error {
			r, err := experiments.Fig13BeadCounts358(o)
			if err != nil {
				return err
			}
			experiments.PrintCountSweep(w, "Fig. 13", r)
			return nil
		},
		"14": func() error {
			r, err := experiments.Fig14PeakAnalysisPerformance(o)
			if err != nil {
				return err
			}
			experiments.PrintFig14(w, r)
			return nil
		},
		"15": func() error {
			r, err := experiments.Fig15ImpedanceSpectra(o)
			if err != nil {
				return err
			}
			experiments.PrintFig15(w, r)
			return nil
		},
		"16": func() error {
			r, err := experiments.Fig16Clusters(o)
			if err != nil {
				return err
			}
			experiments.PrintFig16(w, r)
			return nil
		},
	}
	exps := map[string]func() error{
		"keysize": func() error {
			r, err := experiments.KeySizeAccounting(o)
			if err != nil {
				return err
			}
			experiments.PrintKeySize(w, r)
			return nil
		},
		"compression": func() error {
			r, err := experiments.CompressionExperiment(o)
			if err != nil {
				return err
			}
			experiments.PrintCompression(w, r)
			return nil
		},
		"e2e": func() error {
			r, err := experiments.EndToEndTiming(o)
			if err != nil {
				return err
			}
			experiments.PrintEndToEnd(w, r)
			return nil
		},
		"repeatability": func() error {
			r, err := experiments.Repeatability(o)
			if err != nil {
				return err
			}
			experiments.PrintRepeatability(w, r)
			return nil
		},
		"auth": func() error {
			r, err := experiments.AuthAccuracy(o)
			if err != nil {
				return err
			}
			experiments.PrintAuthAccuracy(w, r)
			return nil
		},
		"ablations": func() error {
			return experiments.PrintAblations(w, o)
		},
	}

	runOne := func(kind, key string, table map[string]func() error) error {
		fn, ok := table[key]
		if !ok {
			return fmt.Errorf("unknown %s %q", kind, key)
		}
		if err := fn(); err != nil {
			return fmt.Errorf("%s %s: %w", kind, key, err)
		}
		fmt.Fprintln(w)
		return nil
	}

	if !all {
		if fig != "" {
			return runOne("figure", fig, figures)
		}
		return runOne("experiment", exp, exps)
	}
	for _, key := range []string{"5", "7", "8", "11", "12", "13", "14", "15", "16"} {
		if err := runOne("figure", key, figures); err != nil {
			return err
		}
	}
	for _, key := range []string{"keysize", "compression", "e2e", "repeatability", "auth", "ablations"} {
		if err := runOne("experiment", key, exps); err != nil {
			return err
		}
	}
	return nil
}
