package main

import (
	"testing"

	"medsen/internal/experiments"
)

func TestRunSelectionSingleFigure(t *testing.T) {
	o := experiments.Options{Seed: 2016, Quick: true}
	if err := runSelection(o, "8", ""); err != nil {
		t.Fatalf("figure 8: %v", err)
	}
	if err := runSelection(o, "", "keysize"); err != nil {
		t.Fatalf("keysize: %v", err)
	}
}

func TestRunSelectionUnknownTargets(t *testing.T) {
	o := experiments.Options{Seed: 1, Quick: true}
	if err := runSelection(o, "99", ""); err == nil {
		t.Error("unknown figure should fail")
	}
	if err := runSelection(o, "", "nope"); err == nil {
		t.Error("unknown experiment should fail")
	}
}
