package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"medsen/internal/benchharness"
	"medsen/internal/experiments"
)

func TestRunSelectionSingleFigure(t *testing.T) {
	o := experiments.Options{Seed: 2016, Quick: true}
	if err := runSelection(o, "8", ""); err != nil {
		t.Fatalf("figure 8: %v", err)
	}
	if err := runSelection(o, "", "keysize"); err != nil {
		t.Fatalf("keysize: %v", err)
	}
}

func TestRunSelectionUnknownTargets(t *testing.T) {
	o := experiments.Options{Seed: 1, Quick: true}
	if err := runSelection(o, "99", ""); err == nil {
		t.Error("unknown figure should fail")
	}
	if err := runSelection(o, "", "nope"); err == nil {
		t.Error("unknown experiment should fail")
	}
}

// writeSuite stores a suite as a JSON file under dir.
func writeSuite(t *testing.T, dir, name string, s benchharness.Suite) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func harnessSuite(ns float64, allocs int64) benchharness.Suite {
	return benchharness.Suite{
		GoVersion: "go1.22", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 8,
		Results: []benchharness.Result{
			{Name: "CloudAnalyze/serial", Iterations: 10, NsPerOp: ns, AllocsPerOp: allocs, BytesPerOp: 1 << 20},
		},
	}
}

func TestRunHarnessCompareFailsOnInjectedRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeSuite(t, dir, "base.json", harnessSuite(1000, 100))
	// Synthetic regression: wall time doubles and allocations grow 50%.
	cur := writeSuite(t, dir, "cur.json", harnessSuite(2000, 150))
	var out bytes.Buffer
	err := runHarness(harnessConfig{
		compareFile: base,
		currentFile: cur,
		thresholds:  benchharness.DefaultThresholds(),
	}, &out)
	if err == nil {
		t.Fatalf("regression must fail the compare; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ns/op regressed") || !strings.Contains(out.String(), "allocs/op regressed") {
		t.Fatalf("output lacks regression details:\n%s", out.String())
	}
}

func TestRunHarnessComparePassesWhenWithinThresholds(t *testing.T) {
	dir := t.TempDir()
	base := writeSuite(t, dir, "base.json", harnessSuite(1000, 100))
	cur := writeSuite(t, dir, "cur.json", harnessSuite(1100, 100))
	var out bytes.Buffer
	if err := runHarness(harnessConfig{
		compareFile: base,
		currentFile: cur,
		thresholds:  benchharness.DefaultThresholds(),
	}, &out); err != nil {
		t.Fatalf("within-threshold compare failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("output lacks pass message:\n%s", out.String())
	}
}

func TestRunHarnessJSONFromCurrentFile(t *testing.T) {
	dir := t.TempDir()
	cur := writeSuite(t, dir, "cur.json", harnessSuite(1000, 100))
	outPath := filepath.Join(dir, "out.json")
	var out bytes.Buffer
	if err := runHarness(harnessConfig{jsonOut: outPath, currentFile: cur}, &out); err != nil {
		t.Fatalf("runHarness: %v", err)
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, err := benchharness.ReadJSON(f)
	if err != nil {
		t.Fatalf("rewritten suite unreadable: %v", err)
	}
	if len(s.Results) != 1 || s.Results[0].Name != "CloudAnalyze/serial" {
		t.Fatalf("unexpected suite: %+v", s)
	}
}

func TestRunHarnessMissingBaseline(t *testing.T) {
	dir := t.TempDir()
	cur := writeSuite(t, dir, "cur.json", harnessSuite(1000, 100))
	var out bytes.Buffer
	err := runHarness(harnessConfig{
		compareFile: filepath.Join(dir, "missing.json"),
		currentFile: cur,
	}, &out)
	if err == nil {
		t.Fatal("missing baseline must fail")
	}
}
