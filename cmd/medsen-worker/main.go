// Command medsen-worker is a standalone analysis worker daemon: the pull
// side of the frontend's lease-based work queue. It acquires journaled jobs
// from a medsen-cloud frontend over the internal workqueue API, runs the DSP
// pipeline on each leased capture under a heartbeat-renewed lease, and posts
// the report back. Workers are stateless — kill one mid-job and the
// frontend's reaper reclaims the lease for another worker.
//
// Usage:
//
//	medsen-worker -url=http://frontend:8077 -api-key=KEY -concurrency=4
//
// Equivalent to `medsen-cloud -role=worker` with the same flags; this binary
// exists so worker fleets can ship without the frontend's serving code.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("medsen-worker", flag.ContinueOnError)
	url := fs.String("url", "http://127.0.0.1:8077", "frontend base URL to pull jobs from")
	apiKey := fs.String("api-key", "", "worker-role API key (required when the frontend enforces auth)")
	id := fs.String("id", "", "worker identity on the lease API (default hostname-pid)")
	concurrency := fs.Int("concurrency", 1, "jobs run at once")
	poll := fs.Duration("poll-interval", 500*time.Millisecond, "idle back-off between empty acquire polls")
	heartbeat := fs.Duration("heartbeat-interval", 0, "lease renewal cadence (0 = a third of the granted TTL)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		fmt.Fprintf(os.Stderr, "medsen-worker: %v\n", err)
		return 2
	}
	return runWorker(workerConfig{
		frontendURL: *url,
		workerID:    *id,
		concurrency: *concurrency,
		heartbeat:   *heartbeat,
		poll:        *poll,
		apiKey:      *apiKey,
	})
}
