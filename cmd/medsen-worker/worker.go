package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"medsen/internal/cloud"
	"medsen/internal/workqueue"
)

// workerConfig carries the parsed flags.
type workerConfig struct {
	frontendURL string
	workerID    string
	concurrency int
	heartbeat   time.Duration
	poll        time.Duration
	apiKey      string
}

// runWorker runs the daemon until SIGINT/SIGTERM.
func runWorker(cfg workerConfig) int {
	if cfg.workerID == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		cfg.workerID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w, err := workqueue.New(workqueue.Config{
		Client:            &cloud.Client{BaseURL: cfg.frontendURL, APIKey: cfg.apiKey},
		ID:                cfg.workerID,
		Concurrency:       cfg.concurrency,
		PollInterval:      cfg.poll,
		HeartbeatInterval: cfg.heartbeat,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "medsen-worker: %v\n", err)
		return 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("medsen-worker: %s pulling jobs from %s", cfg.workerID, cfg.frontendURL)
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "medsen-worker: %v\n", err)
		return 1
	}
	log.Printf("medsen-worker: %s stopped", cfg.workerID)
	return 0
}
