// Command medsen-keytool manages MedSen key schedules outside a diagnostic
// run — generate a schedule for a planned acquisition, inspect one, and seal
// or open practitioner shares (§VII-B key sharing) — plus the analysis
// service's API-key store and audit trail: issue, list and revoke bearer
// keys directly against a service state directory (offline bootstrap, no
// admin key needed), verify an audit chain's hash links, and offline-verify
// a state directory's checksummed documents (store fsck).
//
// Usage:
//
//	medsen-keytool gen -duration 120 -out schedule.msk
//	medsen-keytool inspect -in schedule.msk
//	medsen-keytool seal -in schedule.msk -out share.msks -passphrase s3cret
//	medsen-keytool open -in share.msks -out schedule.msk -passphrase s3cret
//	medsen-keytool apikey issue -state-dir DIR -role owner -subject alice
//	medsen-keytool apikey list -state-dir DIR
//	medsen-keytool apikey revoke -state-dir DIR -id key-2
//	medsen-keytool audit verify -state-dir DIR
//	medsen-keytool store fsck -state-dir DIR
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"medsen/internal/audit"
	"medsen/internal/auth"
	"medsen/internal/cipher"
	"medsen/internal/cloud"
	"medsen/internal/drbg"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) < 1 {
		usage()
		return 2
	}
	var err error
	switch args[0] {
	case "gen":
		err = cmdGen(args[1:])
	case "inspect":
		err = cmdInspect(args[1:])
	case "seal":
		err = cmdSeal(args[1:])
	case "open":
		err = cmdOpen(args[1:])
	case "apikey":
		err = cmdAPIKey(args[1:])
	case "audit":
		err = cmdAudit(args[1:])
	case "store":
		err = cmdStore(args[1:])
	default:
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "medsen-keytool: %v\n", err)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: medsen-keytool <gen|inspect|seal|open|apikey|audit|store> [flags]")
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	duration := fs.Float64("duration", 120, "acquisition window the schedule covers (seconds)")
	electrodes := fs.Int("electrodes", 9, "keyed output electrodes")
	epoch := fs.Float64("epoch", 1.0, "key renewal period (seconds)")
	out := fs.String("out", "", "output file (required)")
	seed := fs.Uint64("seed", 0, "deterministic seed (0 = OS entropy)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("gen: -out is required")
	}
	p := cipher.ParamsForArray(*electrodes)
	p.EpochS = *epoch
	var rng *drbg.DRBG
	if *seed != 0 {
		rng = drbg.NewFromSeed(*seed)
	} else {
		var err error
		rng, err = drbg.NewFromEntropy()
		if err != nil {
			return err
		}
	}
	sched, err := cipher.Generate(p, *duration, rng)
	if err != nil {
		return err
	}
	data, err := sched.MarshalBinary()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o600); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d epochs, %d bits of key material\n",
		*out, len(sched.Epochs), sched.ScheduleBits())
	return nil
}

func loadSchedule(path string) (*cipher.Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sched cipher.Schedule
	if err := sched.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return &sched, nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	in := fs.String("in", "", "schedule file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("inspect: -in is required")
	}
	sched, err := loadSchedule(*in)
	if err != nil {
		return err
	}
	p := sched.Params
	fmt.Printf("schedule: %.1f s over %d epochs of %.2f s\n",
		sched.DurationS, len(sched.Epochs), p.EpochS)
	fmt.Printf("electrodes: %d (min active %d, avoid-adjacent %v)\n",
		p.NumElectrodes, p.MinActive, p.AvoidAdjacent)
	fmt.Printf("gains: %d levels in [%.2f, %.2f]; flow speeds: %d levels in [%.2f, %.2f]\n",
		p.GainLevels, p.GainMin, p.GainMax, p.SpeedLevels, p.SpeedMin, p.SpeedMax)
	fmt.Printf("key material: %d bits (%.3f KB)\n",
		sched.ScheduleBits(), float64(sched.ScheduleBits())/8/1e3)
	return nil
}

func cmdSeal(args []string) error {
	fs := flag.NewFlagSet("seal", flag.ContinueOnError)
	in := fs.String("in", "", "schedule file (required)")
	out := fs.String("out", "", "share output file (required)")
	passphrase := fs.String("passphrase", "", "share passphrase (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" || *passphrase == "" {
		return fmt.Errorf("seal: -in, -out and -passphrase are required")
	}
	sched, err := loadSchedule(*in)
	if err != nil {
		return err
	}
	blob, err := sched.ExportShared(*passphrase)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, blob, 0o600); err != nil {
		return err
	}
	fmt.Printf("sealed %s → %s (%d bytes, AES-256-GCM)\n", *in, *out, len(blob))
	return nil
}

func cmdOpen(args []string) error {
	fs := flag.NewFlagSet("open", flag.ContinueOnError)
	in := fs.String("in", "", "share file (required)")
	out := fs.String("out", "", "schedule output file (required)")
	passphrase := fs.String("passphrase", "", "share passphrase (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" || *passphrase == "" {
		return fmt.Errorf("open: -in, -out and -passphrase are required")
	}
	blob, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	sched, err := cipher.ImportShared(blob, *passphrase)
	if err != nil {
		return err
	}
	data, err := sched.MarshalBinary()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o600); err != nil {
		return err
	}
	fmt.Printf("opened %s → %s (%d epochs)\n", *in, *out, len(sched.Epochs))
	return nil
}

// openKeystoreAt opens the API-key store under a service state directory —
// the same layout medsen-cloud -auth uses, so offline issuance here is
// visible to the service on its next start (or immediately, for a service
// sharing the directory).
func openKeystoreAt(stateDir string) (*auth.Keystore, error) {
	if stateDir == "" {
		return nil, fmt.Errorf("apikey: -state-dir is required")
	}
	return auth.OpenKeystore(nil, cloud.AuthDir(stateDir))
}

func cmdAPIKey(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: medsen-keytool apikey <issue|list|revoke> [flags]")
	}
	switch args[0] {
	case "issue":
		return cmdAPIKeyIssue(args[1:])
	case "list":
		return cmdAPIKeyList(args[1:])
	case "revoke":
		return cmdAPIKeyRevoke(args[1:])
	}
	return fmt.Errorf("apikey: unknown subcommand %q (want issue, list or revoke)", args[0])
}

func cmdAPIKeyIssue(args []string) error {
	fs := flag.NewFlagSet("apikey issue", flag.ContinueOnError)
	stateDir := fs.String("state-dir", "", "service state directory (required)")
	roleName := fs.String("role", "", "key role: owner, clinic or admin (required)")
	subject := fs.String("subject", "", "tenant identity the key acts as (required for owner keys)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	role, err := auth.ParseRole(*roleName)
	if err != nil {
		return err
	}
	ks, err := openKeystoreAt(*stateDir)
	if err != nil {
		return err
	}
	k, secret, err := ks.Issue(role, *subject)
	if err != nil {
		return err
	}
	// The secret is printed exactly once; only its hash is on disk.
	fmt.Printf("issued %s (role %s", k.ID, k.Role)
	if k.Subject != "" {
		fmt.Printf(", subject %s", k.Subject)
	}
	fmt.Printf(")\nsecret: %s\nstore it now — it cannot be recovered\n", secret)
	return nil
}

func cmdAPIKeyList(args []string) error {
	fs := flag.NewFlagSet("apikey list", flag.ContinueOnError)
	stateDir := fs.String("state-dir", "", "service state directory (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ks, err := openKeystoreAt(*stateDir)
	if err != nil {
		return err
	}
	keys := ks.Keys()
	if len(keys) == 0 {
		fmt.Println("no keys")
		return nil
	}
	for _, k := range keys {
		status := "active"
		if k.Revoked() {
			status = "revoked " + time.Unix(k.RevokedAtUnix, 0).UTC().Format(time.RFC3339)
		}
		subject := k.Subject
		if subject == "" {
			subject = "-"
		}
		fmt.Printf("%s\trole=%s\tsubject=%s\tcreated=%s\t%s\n",
			k.ID, k.Role, subject,
			time.Unix(k.CreatedAtUnix, 0).UTC().Format(time.RFC3339), status)
	}
	return nil
}

func cmdAPIKeyRevoke(args []string) error {
	fs := flag.NewFlagSet("apikey revoke", flag.ContinueOnError)
	stateDir := fs.String("state-dir", "", "service state directory (required)")
	id := fs.String("id", "", "key id to revoke (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("apikey revoke: -id is required")
	}
	ks, err := openKeystoreAt(*stateDir)
	if err != nil {
		return err
	}
	k, err := ks.Revoke(*id)
	if err != nil {
		return err
	}
	fmt.Printf("revoked %s (role %s)\n", k.ID, k.Role)
	return nil
}

func cmdAudit(args []string) error {
	if len(args) < 1 || args[0] != "verify" {
		return fmt.Errorf("usage: medsen-keytool audit verify -state-dir DIR")
	}
	fs := flag.NewFlagSet("audit verify", flag.ContinueOnError)
	stateDir := fs.String("state-dir", "", "service state directory (required)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *stateDir == "" {
		return fmt.Errorf("audit verify: -state-dir is required")
	}
	// Open runs the full chain verification; a broken link fails here.
	l, err := audit.Open(cloud.AuditLogPath(*stateDir))
	if err != nil {
		return err
	}
	defer l.Close()
	fmt.Printf("audit chain intact: %d records", l.Len())
	if h := l.HeadHash(); h != "" {
		fmt.Printf(", head %s", h)
	}
	fmt.Println()
	return nil
}

func cmdStore(args []string) error {
	if len(args) < 1 || args[0] != "fsck" {
		return fmt.Errorf("usage: medsen-keytool store fsck -state-dir DIR")
	}
	fs := flag.NewFlagSet("store fsck", flag.ContinueOnError)
	stateDir := fs.String("state-dir", "", "service state directory (required)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *stateDir == "" {
		return fmt.Errorf("store fsck: -state-dir is required")
	}
	// Offline checksum verification of every document, without touching the
	// directory: what a salvage-enabled restart would quarantine, listed in
	// advance. Non-zero exit on any corruption, so scripts can gate on it.
	checked, legacy, issues, err := cloud.FsckStateDir(*stateDir)
	if err != nil {
		return err
	}
	for _, issue := range issues {
		fmt.Printf("corrupt: %s: %v\n", issue.Name, issue.Err)
	}
	fmt.Printf("checked %d documents: %d healthy, %d legacy (no checksum), %d corrupt\n",
		checked, checked-legacy-len(issues), legacy, len(issues))
	if len(issues) > 0 {
		return fmt.Errorf("store fsck: %d corrupt document(s); a salvage-enabled start quarantines them to %s",
			len(issues), filepath.Join(*stateDir, "corrupt"))
	}
	return nil
}
