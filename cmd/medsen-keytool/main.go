// Command medsen-keytool manages MedSen key schedules outside a diagnostic
// run: generate a schedule for a planned acquisition, inspect one, and seal
// or open practitioner shares (§VII-B key sharing).
//
// Usage:
//
//	medsen-keytool gen -duration 120 -out schedule.msk
//	medsen-keytool inspect -in schedule.msk
//	medsen-keytool seal -in schedule.msk -out share.msks -passphrase s3cret
//	medsen-keytool open -in share.msks -out schedule.msk -passphrase s3cret
package main

import (
	"flag"
	"fmt"
	"os"

	"medsen/internal/cipher"
	"medsen/internal/drbg"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) < 1 {
		usage()
		return 2
	}
	var err error
	switch args[0] {
	case "gen":
		err = cmdGen(args[1:])
	case "inspect":
		err = cmdInspect(args[1:])
	case "seal":
		err = cmdSeal(args[1:])
	case "open":
		err = cmdOpen(args[1:])
	default:
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "medsen-keytool: %v\n", err)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: medsen-keytool <gen|inspect|seal|open> [flags]")
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	duration := fs.Float64("duration", 120, "acquisition window the schedule covers (seconds)")
	electrodes := fs.Int("electrodes", 9, "keyed output electrodes")
	epoch := fs.Float64("epoch", 1.0, "key renewal period (seconds)")
	out := fs.String("out", "", "output file (required)")
	seed := fs.Uint64("seed", 0, "deterministic seed (0 = OS entropy)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("gen: -out is required")
	}
	p := cipher.ParamsForArray(*electrodes)
	p.EpochS = *epoch
	var rng *drbg.DRBG
	if *seed != 0 {
		rng = drbg.NewFromSeed(*seed)
	} else {
		var err error
		rng, err = drbg.NewFromEntropy()
		if err != nil {
			return err
		}
	}
	sched, err := cipher.Generate(p, *duration, rng)
	if err != nil {
		return err
	}
	data, err := sched.MarshalBinary()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o600); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d epochs, %d bits of key material\n",
		*out, len(sched.Epochs), sched.ScheduleBits())
	return nil
}

func loadSchedule(path string) (*cipher.Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sched cipher.Schedule
	if err := sched.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return &sched, nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	in := fs.String("in", "", "schedule file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("inspect: -in is required")
	}
	sched, err := loadSchedule(*in)
	if err != nil {
		return err
	}
	p := sched.Params
	fmt.Printf("schedule: %.1f s over %d epochs of %.2f s\n",
		sched.DurationS, len(sched.Epochs), p.EpochS)
	fmt.Printf("electrodes: %d (min active %d, avoid-adjacent %v)\n",
		p.NumElectrodes, p.MinActive, p.AvoidAdjacent)
	fmt.Printf("gains: %d levels in [%.2f, %.2f]; flow speeds: %d levels in [%.2f, %.2f]\n",
		p.GainLevels, p.GainMin, p.GainMax, p.SpeedLevels, p.SpeedMin, p.SpeedMax)
	fmt.Printf("key material: %d bits (%.3f KB)\n",
		sched.ScheduleBits(), float64(sched.ScheduleBits())/8/1e3)
	return nil
}

func cmdSeal(args []string) error {
	fs := flag.NewFlagSet("seal", flag.ContinueOnError)
	in := fs.String("in", "", "schedule file (required)")
	out := fs.String("out", "", "share output file (required)")
	passphrase := fs.String("passphrase", "", "share passphrase (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" || *passphrase == "" {
		return fmt.Errorf("seal: -in, -out and -passphrase are required")
	}
	sched, err := loadSchedule(*in)
	if err != nil {
		return err
	}
	blob, err := sched.ExportShared(*passphrase)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, blob, 0o600); err != nil {
		return err
	}
	fmt.Printf("sealed %s → %s (%d bytes, AES-256-GCM)\n", *in, *out, len(blob))
	return nil
}

func cmdOpen(args []string) error {
	fs := flag.NewFlagSet("open", flag.ContinueOnError)
	in := fs.String("in", "", "share file (required)")
	out := fs.String("out", "", "schedule output file (required)")
	passphrase := fs.String("passphrase", "", "share passphrase (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" || *passphrase == "" {
		return fmt.Errorf("open: -in, -out and -passphrase are required")
	}
	blob, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	sched, err := cipher.ImportShared(blob, *passphrase)
	if err != nil {
		return err
	}
	data, err := sched.MarshalBinary()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o600); err != nil {
		return err
	}
	fmt.Printf("opened %s → %s (%d epochs)\n", *in, *out, len(sched.Epochs))
	return nil
}
