package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestKeytoolLifecycle(t *testing.T) {
	dir := t.TempDir()
	sched := filepath.Join(dir, "k.msk")
	share := filepath.Join(dir, "k.msks")
	opened := filepath.Join(dir, "k2.msk")

	if code := run([]string{"gen", "-duration", "30", "-seed", "9", "-out", sched}); code != 0 {
		t.Fatalf("gen exited %d", code)
	}
	if code := run([]string{"inspect", "-in", sched}); code != 0 {
		t.Fatalf("inspect exited %d", code)
	}
	if code := run([]string{"seal", "-in", sched, "-out", share, "-passphrase", "pw"}); code != 0 {
		t.Fatalf("seal exited %d", code)
	}
	if code := run([]string{"open", "-in", share, "-out", opened, "-passphrase", "pw"}); code != 0 {
		t.Fatalf("open exited %d", code)
	}
	a, err := os.ReadFile(sched)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(opened)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("seal/open round trip corrupted the schedule")
	}
}

func TestKeytoolErrors(t *testing.T) {
	if code := run(nil); code == 0 {
		t.Error("no args should fail")
	}
	if code := run([]string{"frobnicate"}); code == 0 {
		t.Error("unknown command should fail")
	}
	if code := run([]string{"gen"}); code == 0 {
		t.Error("gen without -out should fail")
	}
	if code := run([]string{"inspect", "-in", "/nonexistent"}); code == 0 {
		t.Error("inspect of missing file should fail")
	}
	dir := t.TempDir()
	sched := filepath.Join(dir, "k.msk")
	if code := run([]string{"gen", "-duration", "5", "-seed", "1", "-out", sched}); code != 0 {
		t.Fatal("gen failed")
	}
	share := filepath.Join(dir, "k.msks")
	if code := run([]string{"seal", "-in", sched, "-out", share, "-passphrase", "pw"}); code != 0 {
		t.Fatal("seal failed")
	}
	if code := run([]string{"open", "-in", share, "-out", filepath.Join(dir, "x"), "-passphrase", "wrong"}); code == 0 {
		t.Error("wrong passphrase should fail")
	}
}

// TestKeytoolStoreFsck drives the offline state-dir verifier: exit 0 on a
// healthy directory, non-zero once a document is corrupted.
func TestKeytoolStoreFsck(t *testing.T) {
	dir := t.TempDir()
	if code := run([]string{"store", "fsck", "-state-dir", dir}); code != 0 {
		t.Fatalf("fsck of a healthy directory exited %d", code)
	}
	if err := os.WriteFile(filepath.Join(dir, "an-1.json"), []byte("{torn"), 0o600); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"store", "fsck", "-state-dir", dir}); code == 0 {
		t.Fatal("fsck of a corrupt directory should exit non-zero")
	}
	if code := run([]string{"store", "fsck"}); code == 0 {
		t.Fatal("fsck without -state-dir should fail")
	}
	if code := run([]string{"store", "scrub"}); code == 0 {
		t.Fatal("unknown store subcommand should fail")
	}
}
