// Command medsen-loadgen drives a live analysis service with a simulated
// device fleet: K dongle+phone pairs (internal/microfluidic captures through
// internal/phone relays) submitting captures concurrently, then reports
// throughput, p50/p95/p99 submit latency, the admission-layer verdicts
// (rate-limited / shed / queue-full / duplicate), dedup absorption, and
// capture loss — the SLO numbers for ROADMAP item 4.
//
// Point it at a running medsen-cloud with -url, or pass -self-host to spin
// an in-process service on a loopback port (handy for CI smoke runs and for
// reproducing overload behaviour without a deployment). -self-host-workers=N
// additionally puts the hosted service in frontend mode (no in-process
// analysis pool) and runs N lease-pulling worker daemons against it — the
// distributed topology of `medsen-cloud -role=frontend` plus N
// `medsen-worker` processes, collapsed into one binary for smoke runs; it
// requires -async, since synchronous uploads never touch the work queue. The
// run is fully deterministic in -seed: capture bytes, dedup draws, and the
// optional fault schedule all derive from it.
//
// -json writes the machine-readable result document (the same numbers the
// benchmark harness publishes next to BENCH_*.json); -prom writes the run
// report in the Prometheus text format and re-reads it through the strict
// exposition parser, so a malformed family fails the run.
//
// -batch N coalesces each device's captures into POST /api/v1/analyses:batch
// requests of up to N items — per-item idempotency keys and verdicts, one
// HTTP round trip and one admission decision per batch — and the result
// document reports the measured amortization (captures per round trip).
//
// Usage:
//
//	medsen-loadgen [-url http://host:8077 | -self-host] [-devices K] [-captures N]
//	               [-seed S] [-shared] [-dedup F] [-async | -batch N]
//	               [-capture-duration S] [-api-key KEY] [-retries N] [-faults]
//	               [-rate-limit N] [-queue-depth N] [-max-queue-wait D]
//	               [-self-host-workers N] [-json FILE] [-prom FILE] [-v]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"medsen/internal/cloud"
	"medsen/internal/faultinject"
	"medsen/internal/loadgen"
	"medsen/internal/phone"
	"medsen/internal/promexp"
	"medsen/internal/workqueue"
)

func main() {
	os.Exit(run())
}

func run() int {
	url := flag.String("url", "", "target analysis service base URL (mutually exclusive with -self-host)")
	selfHost := flag.Bool("self-host", false, "spin an in-process analysis service on a loopback port and load it")
	devices := flag.Int("devices", 100, "simulated fleet size K")
	captures := flag.Int("captures", 1, "captures submitted per device")
	seed := flag.Uint64("seed", 1, "deterministic run seed (captures, dedup draws, fault schedule)")
	shared := flag.Bool("shared", true, "replay one reference capture fleet-wide under distinct idempotency keys (cheap); false synthesizes one capture per device")
	dedupFrac := flag.Float64("dedup", 0, "fraction of submissions re-sending the device's previous idempotency key (simulated retransmits; must dedup server-side)")
	asyncMode := flag.Bool("async", false, "submit through the job API with polling instead of synchronous uploads")
	batch := flag.Int("batch", 0, "coalesce each device's captures into batch submissions of up to N items (POST /api/v1/analyses:batch); 0 or 1 submits one capture per request")
	captureDuration := flag.Float64("capture-duration", 10, "simulated acquisition length in seconds (bigger = heavier analyses)")
	apiKey := flag.String("api-key", "", "Authorization: Bearer key sent by every device")
	retries := flag.Int("retries", 0, "per-device retry attempts honouring Retry-After (0 = report 429s as outcomes instead of retrying)")
	faults := flag.Bool("faults", false, "inject seeded transport faults (resets, 5xx, truncations) on every device")
	rateLimit := flag.Float64("rate-limit", 0, "with -self-host: per-client rate limit of the hosted service")
	queueDepth := flag.Int("queue-depth", 0, "with -self-host: job queue depth of the hosted service")
	maxQueueWait := flag.Duration("max-queue-wait", 0, "with -self-host: adaptive shedding bound of the hosted service")
	selfHostWorkers := flag.Int("self-host-workers", 0, "with -self-host: run the service in frontend mode and this many lease-pulling workers against it (requires -async)")
	jsonOut := flag.String("json", "", "write the machine-readable result document to this file")
	promOut := flag.String("prom", "", "write the run report in the Prometheus text format to this file")
	verbose := flag.Bool("v", false, "log run progress")
	flag.Parse()

	if (*url == "") == !*selfHost {
		fmt.Fprintln(os.Stderr, "medsen-loadgen: pass exactly one of -url or -self-host")
		return 2
	}
	if *selfHostWorkers > 0 && !*selfHost {
		fmt.Fprintln(os.Stderr, "medsen-loadgen: -self-host-workers requires -self-host")
		return 2
	}
	if *selfHostWorkers > 0 && !*asyncMode {
		// Synchronous uploads analyze inline in the HTTP handler; only the
		// job API routes through the lease queue the workers pull from.
		fmt.Fprintln(os.Stderr, "medsen-loadgen: -self-host-workers requires -async")
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	base := *url
	if *selfHost {
		svc, err := cloud.NewService(cloud.ServiceConfig{
			RateLimit:       *rateLimit,
			QueueDepth:      *queueDepth,
			MaxQueueWait:    *maxQueueWait,
			ExternalWorkers: *selfHostWorkers > 0,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "medsen-loadgen: self-host service: %v\n", err)
			return 1
		}
		defer svc.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "medsen-loadgen: self-host listener: %v\n", err)
			return 1
		}
		server := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 10 * time.Second}
		go func() { _ = server.Serve(ln) }()
		defer server.Close()
		base = "http://" + ln.Addr().String()
		log.Printf("medsen-loadgen: self-hosting analysis service on %s", base)

		if *selfHostWorkers > 0 {
			workerCtx, stopWorkers := context.WithCancel(ctx)
			var workerWG sync.WaitGroup
			for i := 0; i < *selfHostWorkers; i++ {
				w, err := workqueue.New(workqueue.Config{
					Client: &cloud.Client{BaseURL: base, APIKey: *apiKey},
					ID:     fmt.Sprintf("loadgen-worker-%d", i),
				})
				if err != nil {
					stopWorkers()
					fmt.Fprintf(os.Stderr, "medsen-loadgen: worker: %v\n", err)
					return 1
				}
				workerWG.Add(1)
				go func() {
					defer workerWG.Done()
					if err := w.Run(workerCtx); err != nil {
						log.Printf("medsen-loadgen: worker stopped: %v", err)
					}
				}()
			}
			defer workerWG.Wait()
			defer stopWorkers()
			log.Printf("medsen-loadgen: frontend mode, %d lease-pulling workers attached", *selfHostWorkers)
		}
	}

	cfg := loadgen.Config{
		BaseURL:           base,
		APIKey:            *apiKey,
		Devices:           *devices,
		CapturesPerDevice: *captures,
		Seed:              *seed,
		SharedCapture:     *shared,
		CaptureDurationS:  *captureDuration,
		DedupFraction:     *dedupFrac,
		Async:             *asyncMode,
		Batch:             *batch,
		Uplink:            phone.Default4G(),
	}
	if *retries > 0 {
		cfg.Retry = &cloud.RetryPolicy{MaxAttempts: *retries + 1, BaseDelay: 100 * time.Millisecond}
	}
	if *faults {
		cfg.Faults = &faultinject.HTTPConfig{ResetRate: 0.05, FiveXXRate: 0.05, TruncateRate: 0.02, MaxFaults: 2 * *devices}
	}
	if *verbose {
		cfg.Progress = func(msg string) { log.Printf("medsen-loadgen: %s", msg) }
	}

	res, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "medsen-loadgen: %v\n", err)
		return 1
	}
	fmt.Print(res.Summary())

	if *jsonOut != "" {
		doc, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "medsen-loadgen: encoding result: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*jsonOut, append(doc, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "medsen-loadgen: %v\n", err)
			return 1
		}
		log.Printf("medsen-loadgen: result written to %s", *jsonOut)
	}
	if *promOut != "" {
		f, err := os.Create(*promOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "medsen-loadgen: %v\n", err)
			return 1
		}
		werr := res.WritePrometheus(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "medsen-loadgen: writing %s: %v\n", *promOut, werr)
			return 1
		}
		// Round-trip through the strict exposition parser: the published
		// report must be scrapeable, not just written.
		data, err := os.ReadFile(*promOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "medsen-loadgen: re-reading %s: %v\n", *promOut, err)
			return 1
		}
		if _, err := promexp.Parse(data); err != nil {
			fmt.Fprintf(os.Stderr, "medsen-loadgen: %s is not valid exposition text: %v\n", *promOut, err)
			return 1
		}
		log.Printf("medsen-loadgen: Prometheus report written to %s and round-tripped through the parser", *promOut)
	}

	// Capture loss is the one number that is never acceptable: a non-zero
	// count means the service acknowledged a capture it cannot produce.
	if res.CaptureLoss > 0 {
		fmt.Fprintf(os.Stderr, "medsen-loadgen: FAIL: %d captures lost\n", res.CaptureLoss)
		return 1
	}
	return 0
}
