package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"medsen/internal/cloud"
	"medsen/internal/workqueue"
)

// workerRoleConfig carries the -role=worker flags.
type workerRoleConfig struct {
	frontendURL string
	workerID    string
	concurrency int
	heartbeat   time.Duration
	poll        time.Duration
	apiKey      string
}

// defaultWorkerID derives a fleet-unique worker identity when none is given.
func defaultWorkerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// runWorkerRole runs the pull-mode worker daemon until SIGINT/SIGTERM.
func runWorkerRole(cfg workerRoleConfig) int {
	if cfg.workerID == "" {
		cfg.workerID = defaultWorkerID()
	}
	w, err := workqueue.New(workqueue.Config{
		Client:            &cloud.Client{BaseURL: cfg.frontendURL, APIKey: cfg.apiKey},
		ID:                cfg.workerID,
		Concurrency:       cfg.concurrency,
		PollInterval:      cfg.poll,
		HeartbeatInterval: cfg.heartbeat,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "medsen-cloud: %v\n", err)
		return 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("medsen-cloud: worker %s pulling jobs from %s", cfg.workerID, cfg.frontendURL)
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "medsen-cloud: worker: %v\n", err)
		return 1
	}
	log.Printf("medsen-cloud: worker %s stopped", cfg.workerID)
	return 0
}
