// Command medsen-cloud runs the untrusted analysis service: it accepts
// zip-compressed measurement uploads, executes the peak-detection pipeline,
// serves stored reports, and performs cyto-coded authentication against its
// enrollment registry.
//
// Usage:
//
//	medsen-cloud [-addr :8077]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"medsen"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8077", "listen address")
	flag.Parse()

	svc, err := medsen.NewCloudService()
	if err != nil {
		fmt.Fprintf(os.Stderr, "medsen-cloud: %v\n", err)
		return 1
	}
	server := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("medsen-cloud: analysis service listening on %s", *addr)
	log.Printf("medsen-cloud: endpoints: POST /api/v1/analyses, GET /api/v1/analyses/{id}, " +
		"POST /api/v1/analyses/{id}/authenticate, POST /api/v1/users, GET /api/v1/users/{id}/analyses")
	if err := server.ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "medsen-cloud: %v\n", err)
		return 1
	}
	return 0
}
