// Command medsen-cloud runs the untrusted analysis service: it accepts
// zip-compressed measurement uploads, executes the peak-detection pipeline
// (inline or on a bounded async job queue), serves stored reports, and
// performs cyto-coded authentication against its enrollment registry.
//
// Usage:
//
//	medsen-cloud [-addr :8077] [-workers N] [-queue-depth N] [-state-dir DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"medsen/internal/cloud"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8077", "listen address")
	workers := flag.Int("workers", 0, "async analysis worker count (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "async job queue depth before 429 backpressure (0 = default 64)")
	stateDir := flag.String("state-dir", "", "directory persisting analyses across restarts (empty = in-memory only)")
	flag.Parse()

	svc, err := cloud.NewService(cloud.ServiceConfig{
		Workers:    *workers,
		QueueDepth: *queueDepth,
		StateDir:   *stateDir,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "medsen-cloud: %v\n", err)
		return 1
	}
	defer svc.Close()
	server := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("medsen-cloud: analysis service listening on %s", *addr)
	log.Printf("medsen-cloud: endpoints: POST /api/v1/analyses[?async=1], GET /api/v1/analyses, " +
		"GET /api/v1/analyses/{id}, GET /api/v1/jobs/{id}, POST /api/v1/analyses/{id}/authenticate, " +
		"POST /api/v1/users, GET /api/v1/users/{id}/analyses")
	if err := server.ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "medsen-cloud: %v\n", err)
		return 1
	}
	return 0
}
