// Command medsen-cloud runs the untrusted analysis service: it accepts
// zip-compressed measurement uploads, executes the peak-detection pipeline
// (inline or on a bounded async job queue), serves stored reports, and
// performs cyto-coded authentication against its enrollment registry.
//
// With -state-dir the async job queue is durable: accepted jobs are
// journaled and recovered on restart, and SIGTERM/SIGINT drains in-flight
// analyses within -shutdown-timeout instead of killing workers mid-job
// (still-queued jobs stay journaled for the next start). Documents are
// checksummed on disk; a corrupt one is quarantined to <state-dir>/corrupt
// at startup (audited, counted in store_salvaged) and the service starts on
// the healthy remainder — pass -salvage=false to refuse to start instead.
// While durable writes fail persistently the service serves reads but
// refuses mutations with 503 degraded, recovering automatically once the
// disk heals; verify a state directory offline with medsen-keytool store
// fsck.
//
// -rate-limit bounds each client to a sustained submissions-per-second rate
// (burst -rate-burst) answered with 429 + Retry-After, and -max-queue-wait
// sheds load adaptively once the estimated queue wait exceeds the bound —
// batch async uploads first, interactive sync submissions only at 4x the
// limit, authentication never. Uploads dedup on their Idempotency-Key
// header (default: the payload SHA-256), so rejected or retried submissions
// never double-analyze a capture.
//
// With -auth every /api/v1 request must carry an Authorization: Bearer API
// key (owner/clinic/admin RBAC; keys live under <state-dir>/auth and are
// managed via POST /api/v1/keys or medsen-keytool apikey), and every access
// is recorded to the hash-chained audit trail at <state-dir>/audit.log —
// verified on startup, served to admins at GET /api/v1/audit. Use
// -bootstrap-admin-key to install the first admin credential.
//
// GET /metrics serves the service counters as JSON by default; a Prometheus
// scraper gets the text exposition format via ?format=prometheus or its
// Accept header. Drive the service at fleet scale with medsen-loadgen.
//
// The execution topology is chosen with -role:
//
//	-role=all       (default) one process does everything: the HTTP frontend
//	                plus the in-process analysis worker pool.
//	-role=frontend  HTTP only; async jobs wait for external worker daemons
//	                to lease them over the internal workqueue API. Leases are
//	                bounded by -lease-ttl and attempts by -max-attempts; the
//	                built-in reaper reclaims expired leases and quarantines
//	                poison jobs.
//	-role=worker    no HTTP listener; the process pulls jobs from the
//	                frontend at -frontend-url (heartbeating every
//	                -heartbeat-interval) and posts results back. Equivalent
//	                to cmd/medsen-worker.
//
// Usage:
//
//	medsen-cloud [-role all|frontend|worker] [-addr :8077] [-workers N]
//	             [-queue-depth N] [-state-dir DIR] [-salvage=false]
//	             [-job-ttl D] [-max-terminal-jobs N] [-shutdown-timeout D]
//	             [-job-timeout D] [-rate-limit N] [-rate-burst N] [-max-queue-wait D]
//	             [-lease-ttl D] [-max-attempts N]
//	             [-frontend-url URL] [-worker-id ID] [-worker-concurrency N]
//	             [-heartbeat-interval D] [-poll-interval D] [-api-key SECRET]
//	             [-read-timeout D] [-write-timeout D] [-idle-timeout D]
//	             [-pprof-addr 127.0.0.1:6060] [-auth] [-bootstrap-admin-key SECRET]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux for -pprof-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"medsen/internal/audit"
	"medsen/internal/auth"
	"medsen/internal/cloud"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8077", "listen address")
	workers := flag.Int("workers", 0, "async analysis worker count (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "async job queue depth before 429 backpressure (0 = default 64)")
	stateDir := flag.String("state-dir", "", "directory persisting analyses and job journals across restarts (empty = in-memory only)")
	salvage := flag.Bool("salvage", true, "quarantine corrupt state documents to <state-dir>/corrupt and start on the healthy remainder; -salvage=false refuses to start over any corrupt document (inspect offline with medsen-keytool store fsck)")
	jobTTL := flag.Duration("job-ttl", 0, "terminal async job retention (0 = default 1h, negative = keep until count bound)")
	maxTerminalJobs := flag.Int("max-terminal-jobs", 0, "retained terminal async job records (0 = default 1024, negative = unbounded)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 30*time.Second, "graceful drain deadline on SIGTERM/SIGINT")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job analysis execution deadline; over-budget jobs fail terminally with deadline_exceeded (0 = none)")
	rateLimit := flag.Float64("rate-limit", 0, "per-client sustained submissions per second before 429 rate_limited (0 = unlimited)")
	rateBurst := flag.Int("rate-burst", 0, "per-client submission burst allowance (0 = 2x rate-limit)")
	maxQueueWait := flag.Duration("max-queue-wait", 0, "estimated queue wait beyond which new submissions are shed with 429 overloaded (0 = never shed)")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "max duration reading an entire request, including the upload body")
	writeTimeout := flag.Duration("write-timeout", 30*time.Second, "max duration writing a response")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time before the connection is closed")
	pprofAddr := flag.String("pprof-addr", "", "listen address for net/http/pprof profiling endpoints (empty = disabled; a bare :port binds loopback only)")
	authOn := flag.Bool("auth", false, "require Authorization: Bearer API keys on every /api/v1 request and record the hash-chained audit trail")
	bootstrapAdminKey := flag.String("bootstrap-admin-key", "", "with -auth: install this secret as an admin API key at startup (idempotent), so further keys can be issued over the API")
	role := flag.String("role", "all", "process role: all (frontend + in-process workers), frontend (HTTP only; external workers pull jobs), worker (no HTTP; pull jobs from -frontend-url)")
	leaseTTL := flag.Duration("lease-ttl", 0, "worker lease duration before the reaper reclaims an un-heartbeated job (0 = default 30s)")
	maxAttempts := flag.Int("max-attempts", 0, "per-job attempt budget before quarantine as poisoned (0 = default 5, negative = unbounded)")
	frontendURL := flag.String("frontend-url", "http://127.0.0.1:8077", "with -role=worker: base URL of the frontend to pull jobs from")
	workerID := flag.String("worker-id", "", "with -role=worker: stable worker identity on the lease API (default host-pid derived)")
	workerConcurrency := flag.Int("worker-concurrency", 0, "with -role=worker: jobs run at once (0 = 1)")
	heartbeatInterval := flag.Duration("heartbeat-interval", 0, "with -role=worker: lease renewal period (0 = a third of the granted TTL)")
	pollInterval := flag.Duration("poll-interval", 0, "with -role=worker: idle back-off between empty acquire polls (0 = 500ms)")
	apiKey := flag.String("api-key", "", "with -role=worker: worker-role Authorization: Bearer credential for the frontend")
	flag.Parse()

	switch *role {
	case "all", "frontend":
	case "worker":
		return runWorkerRole(workerRoleConfig{
			frontendURL: *frontendURL,
			workerID:    *workerID,
			concurrency: *workerConcurrency,
			heartbeat:   *heartbeatInterval,
			poll:        *pollInterval,
			apiKey:      *apiKey,
		})
	default:
		fmt.Fprintf(os.Stderr, "medsen-cloud: unknown -role %q (want all, frontend or worker)\n", *role)
		return 1
	}

	if *pprofAddr != "" {
		// The profiler exposes heap contents and must never share the public
		// listener; a bare ":port" is pinned to loopback rather than all
		// interfaces.
		paddr := *pprofAddr
		if strings.HasPrefix(paddr, ":") {
			paddr = "127.0.0.1" + paddr
		}
		ln, err := net.Listen("tcp", paddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "medsen-cloud: pprof listener: %v\n", err)
			return 1
		}
		log.Printf("medsen-cloud: pprof on http://%s/debug/pprof/", ln.Addr())
		go func() {
			// DefaultServeMux carries only the net/http/pprof handlers; the
			// service handler below uses its own mux.
			if err := http.Serve(ln, nil); err != nil {
				log.Printf("medsen-cloud: pprof server: %v", err)
			}
		}()
	}

	var keystore *auth.Keystore
	var auditLog *audit.Log
	if *authOn {
		// Without a state dir both stores are memory-only: keys and trail die
		// with the process, which is fine for demos and wrong for production —
		// exactly like the analysis store itself.
		ksDir, auditPath := "", ""
		if *stateDir != "" {
			ksDir = cloud.AuthDir(*stateDir)
			auditPath = cloud.AuditLogPath(*stateDir)
		}
		var err error
		keystore, err = auth.OpenKeystore(nil, ksDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "medsen-cloud: %v\n", err)
			return 1
		}
		// A tampered audit chain refuses to open — the service must not start
		// over a trail it cannot vouch for.
		auditLog, err = audit.Open(auditPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "medsen-cloud: %v\n", err)
			return 1
		}
		defer auditLog.Close()
		if *bootstrapAdminKey != "" {
			k, err := keystore.Install(*bootstrapAdminKey, auth.RoleAdmin, "")
			if err != nil {
				fmt.Fprintf(os.Stderr, "medsen-cloud: bootstrap admin key: %v\n", err)
				return 1
			}
			log.Printf("medsen-cloud: bootstrap admin key installed as %s", k.ID)
		}
		if !keystore.HasActiveAdmin() {
			log.Printf("medsen-cloud: warning: no active admin key — key issuance and the audit trail are unreachable " +
				"(pass -bootstrap-admin-key or issue one with medsen-keytool apikey)")
		}
		log.Printf("medsen-cloud: authentication enabled (audit chain: %d records)", auditLog.Len())
	} else if *bootstrapAdminKey != "" {
		fmt.Fprintln(os.Stderr, "medsen-cloud: -bootstrap-admin-key requires -auth")
		return 1
	}

	svc, err := cloud.NewService(cloud.ServiceConfig{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		StateDir:        *stateDir,
		JobTTL:          *jobTTL,
		MaxTerminalJobs: *maxTerminalJobs,
		JobTimeout:      *jobTimeout,
		RateLimit:       *rateLimit,
		RateBurst:       *rateBurst,
		MaxQueueWait:    *maxQueueWait,
		StrictLoad:      !*salvage,
		Keystore:        keystore,
		Audit:           auditLog,
		ExternalWorkers: *role == "frontend",
		LeaseTTL:        *leaseTTL,
		MaxAttempts:     *maxAttempts,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "medsen-cloud: %v\n", err)
		return 1
	}
	// Full server timeouts, not just header reads: a stalled or malicious
	// client must not pin a connection (and its handler goroutine) forever.
	server := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	log.Printf("medsen-cloud: analysis service listening on %s", *addr)
	log.Printf("medsen-cloud: endpoints: POST /api/v1/analyses[?async=1], GET /api/v1/analyses, " +
		"GET /api/v1/analyses/{id}, GET /api/v1/jobs, GET /api/v1/jobs/{id}, " +
		"POST /api/v1/analyses/{id}/authenticate, POST /api/v1/users, GET /api/v1/users/{id}/analyses, " +
		"POST/GET /api/v1/keys, DELETE /api/v1/keys/{id}, GET /api/v1/audit, " +
		"GET /healthz, GET /readyz, GET /metrics[?format=prometheus]")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.ListenAndServe() }()

	select {
	case err := <-serveErr:
		svc.Close()
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "medsen-cloud: %v\n", err)
			return 1
		}
		return 0
	case <-ctx.Done():
	}

	// Signal received: stop accepting connections, then drain in-flight
	// analyses within the deadline. Jobs no worker picked up stay journaled
	// under -state-dir and are re-enqueued on the next start.
	log.Printf("medsen-cloud: signal received; draining jobs (deadline %s)", *shutdownTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := server.Shutdown(sctx); err != nil {
		log.Printf("medsen-cloud: http shutdown: %v", err)
	}
	if err := svc.Shutdown(sctx); err != nil {
		log.Printf("medsen-cloud: drain incomplete: %v (unfinished jobs remain journaled)", err)
		return 1
	}
	log.Printf("medsen-cloud: drained cleanly")
	return 0
}
