package main

import (
	"os"
	"path/filepath"
	"testing"

	"medsen"
)

func TestPipetteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pipette.json")
	id := medsen.Identifier{medsen.Bead358: 2, medsen.Bead780: 4}
	if err := savePipette(path, "alice", id); err != nil {
		t.Fatalf("savePipette: %v", err)
	}
	user, got, err := loadPipette(path)
	if err != nil {
		t.Fatalf("loadPipette: %v", err)
	}
	if user != "alice" || !got.Equal(id) {
		t.Fatalf("round trip: user=%q id=%v", user, got)
	}
}

func TestLoadPipetteErrors(t *testing.T) {
	if _, _, err := loadPipette(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("expected error for missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFileHelper(bad, `{"user_id":"u","identifier":{"unobtainium":1}}`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadPipette(bad); err == nil {
		t.Error("expected error for unknown particle name")
	}
	garbage := filepath.Join(t.TempDir(), "garbage.json")
	if err := writeFileHelper(garbage, "not-json"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadPipette(garbage); err == nil {
		t.Error("expected error for malformed JSON")
	}
}

func TestRenderReportValidation(t *testing.T) {
	if err := renderReport(""); err == nil {
		t.Error("expected error without -records")
	}
	if err := renderReport(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Error("expected error for empty record log")
	}
}

func writeFileHelper(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o600)
}
