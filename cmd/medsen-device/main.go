// Command medsen-device simulates a complete MedSen dongle run: it draws a
// blood sample at the given concentration, generates a fresh key schedule,
// acquires the encrypted measurements, ships them to the analysis backend
// (a medsen-cloud instance, or the on-device analyzer with -local), decrypts
// the returned peak report and prints the diagnosis.
//
// Usage:
//
//	medsen-device -local -conc 350 -duration 120
//	medsen-device -cloud http://localhost:8077 -conc 150 -duration 180
//	medsen-device -cloud http://localhost:8077 -enroll alice    # issue+register a password
//	medsen-device -cloud http://localhost:8077 -auth            # authenticate by pipette beads
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"medsen"
	"medsen/internal/controller"
	"medsen/internal/diagnosis"
	"medsen/internal/report"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		cloudURL = flag.String("cloud", "", "base URL of a medsen-cloud service")
		apiKey   = flag.String("api-key", os.Getenv("MEDSEN_API_KEY"), "bearer API key for a medsen-cloud running with -auth (default $MEDSEN_API_KEY)")
		local    = flag.Bool("local", false, "analyze on-device instead of in the cloud")
		conc     = flag.Float64("conc", 350, "blood cell concentration (cells/µL)")
		duration = flag.Float64("duration", 120, "acquisition window (seconds)")
		dilution = flag.Float64("dilution", 1, "pre-measurement sample dilution factor")
		seed     = flag.Uint64("seed", 0, "deterministic seed (0 = OS entropy)")
		enroll   = flag.String("enroll", "", "issue a new cyto-coded password for this user and register it")
		auth     = flag.Bool("auth", false, "authenticate by the password beads in the pipette file")
		pipette  = flag.String("pipette", "medsen-pipette.json", "file holding the issued password identifier")
		records  = flag.String("records", "", "append diagnostic outcomes to this JSONL record log")
		report   = flag.Bool("report", false, "render a practitioner report from -records and exit")
	)
	flag.Parse()

	if *report {
		if err := renderReport(*records); err != nil {
			fmt.Fprintf(os.Stderr, "medsen-device: %v\n", err)
			return 1
		}
		return 0
	}
	if err := runDevice(*cloudURL, *apiKey, *local, *conc, *duration, *dilution, *seed, *enroll, *auth, *pipette, *records); err != nil {
		fmt.Fprintf(os.Stderr, "medsen-device: %v\n", err)
		return 1
	}
	return 0
}

// pipetteFile is the on-disk form of an issued password: what enrollment
// loads into the patient's pipette supply.
type pipetteFile struct {
	UserID     string         `json:"user_id"`
	Identifier map[string]int `json:"identifier"`
}

func savePipette(path, user string, id medsen.Identifier) error {
	doc := pipetteFile{UserID: user, Identifier: make(map[string]int, len(id))}
	for t, lv := range id {
		doc.Identifier[t.String()] = lv
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o600)
}

func loadPipette(path string) (string, medsen.Identifier, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	var doc pipetteFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return "", nil, fmt.Errorf("parsing pipette file: %w", err)
	}
	id := make(medsen.Identifier, len(doc.Identifier))
	for name, lv := range doc.Identifier {
		t, err := medsen.ParticleTypeFromName(name)
		if err != nil {
			return "", nil, err
		}
		id[t] = lv
	}
	return doc.UserID, id, nil
}

func renderReport(recordsPath string) error {
	if recordsPath == "" {
		return fmt.Errorf("-report requires -records")
	}
	out, err := report.Render(&controller.RecordLog{Path: recordsPath}, report.Options{
		Panel: diagnosis.CD4Panel(),
		Now:   time.Now(),
	})
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

func runDevice(cloudURL, apiKey string, local bool, conc, duration, dilution float64, seed uint64, enroll string, auth bool, pipette, records string) error {
	// newClient builds a cloud client carrying the bearer key (if any) so
	// every path — enrollment, authentication, the relay upload — works
	// against a service running with -auth.
	newClient := func() *medsen.CloudClient {
		c := medsen.NewCloudClient(cloudURL)
		c.APIKey = apiKey
		return c
	}
	opts := []medsen.DeviceOption{
		medsen.WithNotify(func(s string) { fmt.Printf("  [device] %s\n", s) }),
	}
	if seed != 0 {
		opts = append(opts, medsen.WithSeed(seed))
	}
	device, err := medsen.NewDevice(opts...)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	if enroll != "" {
		if cloudURL == "" {
			return fmt.Errorf("-enroll requires -cloud")
		}
		id, err := device.NewIdentifier()
		if err != nil {
			return err
		}
		if err := newClient().Enroll(ctx, enroll, id); err != nil {
			return err
		}
		if err := savePipette(pipette, enroll, id); err != nil {
			return err
		}
		fmt.Printf("enrolled %q with cyto-coded password %s\n", enroll, id)
		fmt.Printf("pipette identifier written to %s (in deployment: loaded into the pipette supply)\n", pipette)
		return nil
	}

	if auth {
		if cloudURL == "" {
			return fmt.Errorf("-auth requires -cloud")
		}
		user, id, err := loadPipette(pipette)
		if err != nil {
			return fmt.Errorf("loading pipette (run -enroll first): %w", err)
		}
		blood := medsen.NewBloodSample(10, conc)
		mixed, err := device.MixPassword(id, blood)
		if err != nil {
			return err
		}
		fmt.Printf("acquiring %s's bead-coded sample (plaintext mode, %.0f s)\n", user, duration)
		acq, err := device.AcquirePlaintext(mixed, duration)
		if err != nil {
			return err
		}
		client := newClient()
		sub, err := client.SubmitAcquisition(ctx, acq)
		if err != nil {
			return err
		}
		res, err := client.Authenticate(ctx, sub.ID)
		if err != nil {
			return err
		}
		fmt.Printf("authenticated=%v matched account=%q (bead counts: %v)\n",
			res.Authenticated, res.UserID, res.CountsByType)
		if !res.Authenticated || res.UserID != user {
			return fmt.Errorf("authentication failed for %q", user)
		}
		return nil
	}

	blood := medsen.NewBloodSample(10, conc)
	var analyzer medsen.Analyzer
	switch {
	case local:
		analyzer = medsen.NewLocalAnalyzer()
	case cloudURL != "":
		relay := medsen.NewPhoneRelay(cloudURL)
		relay.Client.APIKey = apiKey
		analyzer = relay
	default:
		return fmt.Errorf("pass -local or -cloud URL")
	}

	res, err := device.RunDiagnostic(ctx, medsen.RunConfig{
		Sample:         blood,
		DurationS:      duration,
		SampleDilution: dilution,
	}, analyzer)
	if err != nil {
		return err
	}

	if records != "" {
		log := &controller.RecordLog{Path: records}
		if err := log.Append(time.Now(), res); err != nil {
			return err
		}
		fmt.Printf("result appended to %s\n", records)
	}

	fmt.Println()
	fmt.Printf("diagnosis: %s (%s)\n", res.Diagnosis.Label, res.Diagnosis.Severity)
	fmt.Printf("recovered concentration: %.0f %s\n", res.Diagnosis.ConcentrationPerUl, "cells/µL")
	fmt.Printf("true cells counted: %d (the cloud saw %d ciphertext peaks)\n",
		res.CellCount, res.CiphertextPeaks)
	fmt.Printf("post-acquisition time: %.3f s (analysis %.3f s, decryption %.6f s)\n",
		res.Timing.PostAcquisition.Seconds(), res.Timing.Analyze.Seconds(), res.Timing.Decrypt.Seconds())

	out, err := json.MarshalIndent(res.Diagnosis, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("result JSON: %s\n", out)
	return nil
}
