// Golden-checksum tests pinning the seeded simulation outputs bit-for-bit.
//
// The scratch-reuse pass over the simulation/classification stack (DESIGN.md
// §10) promises *bitwise-identical* results: same DRBG stream, same float
// operations in the same order, for every worker count. These tests make
// that promise enforceable — each hashes every deterministic field of a
// seeded run (float64s by their IEEE-754 bit pattern, never via formatting)
// and compares against a checksum recorded before the optimization pass.
// A mismatch means the simulated physics changed, not just its speed.
package medsen_test

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"testing"

	"medsen"
	"medsen/internal/cipher"
	"medsen/internal/controller"
	"medsen/internal/drbg"
	"medsen/internal/sensor"
)

// goldenHash accumulates values into a SHA-256 in a type-explicit way so the
// checksum depends only on the values, not on formatting.
type goldenHash struct{ h hash.Hash }

func newGoldenHash() *goldenHash { return &goldenHash{h: sha256.New()} }

func (g *goldenHash) u64(v uint64) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	g.h.Write(buf[:])
}

func (g *goldenHash) i64(v int64)   { g.u64(uint64(v)) }
func (g *goldenHash) f64(v float64) { g.u64(math.Float64bits(v)) }
func (g *goldenHash) str(s string)  { g.u64(uint64(len(s))); g.h.Write([]byte(s)) }
func (g *goldenHash) sum() string   { return hex.EncodeToString(g.h.Sum(nil)) }

func (g *goldenHash) bool(b bool) {
	if b {
		g.u64(1)
	} else {
		g.u64(0)
	}
}

// hashDiagnostic folds every deterministic field of a DiagnosticResult.
// Timing is wall-clock and deliberately excluded.
func hashDiagnostic(res medsen.DiagnosticResult) string {
	g := newGoldenHash()
	g.str(res.Diagnosis.Panel)
	g.f64(res.Diagnosis.ConcentrationPerUl)
	g.str(res.Diagnosis.Label)
	g.i64(int64(res.Diagnosis.Severity))
	g.i64(int64(res.CellCount))
	g.i64(int64(res.BeadCount))
	g.i64(int64(res.CiphertextPeaks))
	g.bool(res.IntegrityChecked)
	g.bool(res.IntegrityOK)
	return g.sum()
}

// runDiagnostic runs one fully seeded local diagnostic.
func runDiagnostic(t *testing.T, seed uint64, durationS float64, cellsPerUl float64, workers int) medsen.DiagnosticResult {
	t.Helper()
	device, err := medsen.NewDevice(medsen.WithSeed(seed))
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	res, err := device.RunDiagnostic(context.Background(), medsen.RunConfig{
		Sample:    medsen.NewBloodSample(10, cellsPerUl),
		DurationS: durationS,
		Workers:   workers,
	}, medsen.NewLocalAnalyzer())
	if err != nil {
		t.Fatalf("RunDiagnostic(seed=%d): %v", seed, err)
	}
	return res
}

// TestGoldenDiagnosticResult pins the end-to-end local diagnostic for a
// spread of seeds and durations, at every worker count. The checksums were
// recorded from the pre-optimization tree; they must never change.
func TestGoldenDiagnosticResult(t *testing.T) {
	cases := []struct {
		seed      uint64
		durationS float64
		cells     float64
		want      string
	}{
		{seed: 1, durationS: 30, cells: 150, want: "dd5f07702dad9d705789d82cb626f4013394dbb461bb3237c0cb8d77c2ea057f"},
		{seed: 2, durationS: 20, cells: 350, want: "36e840692a3e6cb97340af0f3d89e827d2bc8c9fb7605151dcad35938bc0ecac"},
		{seed: 2016, durationS: 25, cells: 600, want: "5e88404d26ce0890635f532bcfb736ecd014436e371e155f9e945a0e366f6dce"},
	}
	for _, tc := range cases {
		serial := runDiagnostic(t, tc.seed, tc.durationS, tc.cells, 1)
		if got := hashDiagnostic(serial); got != tc.want {
			t.Errorf("seed %d duration %vs: diagnostic checksum drifted\n got %s\nwant %s",
				tc.seed, tc.durationS, got, tc.want)
		}
		for _, workers := range []int{0, 2, 3, 7} {
			res := runDiagnostic(t, tc.seed, tc.durationS, tc.cells, workers)
			if got := hashDiagnostic(res); got != tc.want {
				t.Errorf("seed %d workers %d: checksum differs from serial\n got %s\nwant %s",
					tc.seed, workers, got, tc.want)
			}
		}
	}
}

// hashAcquisition folds the complete ciphertext capture — every sample of
// every carrier trace by bit pattern — plus the ground-truth transit stream.
// This pins the microfluidic → electrode → lock-in synthesis chain at full
// resolution, far more sensitively than the end diagnosis.
func hashAcquisition(res sensor.Result) string {
	g := newGoldenHash()
	g.i64(int64(len(res.Acquisition.CarriersHz)))
	for i, f := range res.Acquisition.CarriersHz {
		g.f64(f)
		tr := res.Acquisition.Traces[i]
		g.f64(tr.Rate)
		g.i64(int64(len(tr.Samples)))
		for _, s := range tr.Samples {
			g.f64(s)
		}
	}
	g.i64(int64(len(res.Transits)))
	for _, tr := range res.Transits {
		g.i64(int64(tr.Type))
		g.f64(tr.EntryS)
		g.f64(tr.VelocityUmS)
		g.f64(tr.SizeScale)
	}
	return g.sum()
}

// TestGoldenEncryptedAcquisition pins the raw encrypted acquisition (the
// exact DRBG-driven sample stream) for seeded sensor runs, serial and at
// every worker count.
func TestGoldenEncryptedAcquisition(t *testing.T) {
	cases := []struct {
		seed      uint64
		durationS float64
		cells     float64
		want      string
	}{
		{seed: 1, durationS: 15, cells: 150, want: "89ac73d8b528e914889b99792172649cac55e82f95b8b1ff76dc97ce678f9fdb"},
		{seed: 7, durationS: 8, cells: 500, want: "e8c0b8b71bfd3822235860c44103a33a9487f4ba6facff587e902abd875bfa67"},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 0, 2, 5} {
			rng := drbg.NewFromSeed(tc.seed)
			s := sensor.NewDefault()
			ctrl, err := controller.New(s, rng)
			if err != nil {
				t.Fatalf("controller.New: %v", err)
			}
			sched, err := cipher.Generate(ctrl.Params, tc.durationS, rng)
			if err != nil {
				t.Fatalf("cipher.Generate: %v", err)
			}
			res, err := s.Acquire(sensor.AcquireConfig{
				Sample:    medsen.NewBloodSample(10, tc.cells),
				DurationS: tc.durationS,
				Schedule:  sched,
				Workers:   workers,
			}, rng)
			if err != nil {
				t.Fatalf("Acquire(seed=%d): %v", tc.seed, err)
			}
			if got := hashAcquisition(res); got != tc.want {
				t.Errorf("seed %d workers %d: acquisition checksum drifted\n got %s\nwant %s",
					tc.seed, workers, got, tc.want)
			}
		}
	}
}
