// Benchmarks regenerating the paper's evaluation. There is one benchmark per
// figure and per in-text experiment (see DESIGN.md §3 for the index); each
// delegates to internal/experiments in Quick mode so a full `go test
// -bench=.` pass completes in minutes. The medsen-bench binary runs the same
// experiments at full scale and prints the tables/series.
package medsen_test

import (
	"context"
	"testing"

	"medsen"
	"medsen/internal/cipher"
	"medsen/internal/cloud"
	"medsen/internal/drbg"
	"medsen/internal/experiments"
	"medsen/internal/lockin"
	"medsen/internal/microfluidic"
	"medsen/internal/sensor"
	"medsen/internal/sigproc"
)

// benchOpts returns per-iteration options; the iteration index varies the
// seed so the benchmark does not measure one lucky draw.
func benchOpts(i int) experiments.Options {
	return experiments.Options{Seed: 2016 + uint64(i), Quick: true}
}

func BenchmarkFig07SinglePeak(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig07SingleCellDrop(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig08FivePeak(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig08FivePeakSignature(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		if r.PeakCount != 5 {
			b.Fatalf("peak count %d", r.PeakCount)
		}
	}
}

func BenchmarkFig11EncryptedSignatures(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11EncryptedSignatures(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12BeadCount780(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12BeadCounts780(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13BeadCount358(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13BeadCounts358(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14PeakAnalysisComputer(b *testing.B) {
	b.ReportAllocs()
	benchmarkFig14Profile(b, false)
}

func BenchmarkFig14PeakAnalysisSmartphone(b *testing.B) {
	b.ReportAllocs()
	benchmarkFig14Profile(b, true)
}

func benchmarkFig14Profile(b *testing.B, phone bool) {
	b.Helper()
	// Measure the pipeline itself (the quantity Fig. 14 plots) on the
	// smallest of the paper's sample sizes.
	rng := drbg.NewFromSeed(14)
	tr := experiments.SyntheticCaptureForBench(experiments.Fig14SampleSizes[0], rng)
	prof := experiments.Fig14Profile(phone)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := prof.RunPeakAnalysis(tr, sigproc.DefaultDetrendConfig(), sigproc.DefaultPeakConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Peaks) == 0 {
			b.Fatal("no peaks")
		}
	}
}

func BenchmarkFig15ImpedanceSpectra(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig15ImpedanceSpectra(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16Clusters(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig16Clusters(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKeyGeneration(b *testing.B) {
	b.ReportAllocs()
	// Eq. 2 context: generating the practical epoch schedule for a
	// 10-minute acquisition.
	params := cipher.DefaultParams()
	rng := drbg.NewFromSeed(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cipher.Generate(params, 600, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompression(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.CompressionExperiment(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		if r.Ratio <= 1 {
			b.Fatalf("ratio %v", r.Ratio)
		}
	}
}

func BenchmarkEndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.EndToEndTiming(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAuthAccuracy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AuthAccuracy(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		if r.LoginAttempts == 0 {
			b.Fatal("no logins")
		}
	}
}

func BenchmarkAblationGainRandomization(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.GainRandomizationAblation(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSpeedRandomization(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SpeedRandomizationAblation(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEpochLength(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.EpochLengthAblation(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDetrend(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DetrendAblation(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiagnosticLocal measures the complete user-visible flow through
// the public API (key generation, simulated acquisition, analysis,
// decryption, diagnosis). The device is re-seeded (recreated) outside the
// timer before every iteration: the device's DRBG advances with each
// diagnostic, so a device reused across iterations would draw a different
// key schedule and particle stream every time — each iteration would measure
// a different workload and the result would drift with b.N.
func BenchmarkDiagnosticLocal(b *testing.B) {
	b.ReportAllocs()
	sample := medsen.NewBloodSample(10, 150)
	analyzer := medsen.NewLocalAnalyzer()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		device, err := medsen.NewDevice(medsen.WithSeed(1))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := device.RunDiagnostic(ctx, medsen.RunConfig{
			Sample: sample, DurationS: 30,
		}, analyzer); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecrypt isolates the controller's decryption cost (the paper:
// "light computation" suitable for the resource-constrained controller).
func BenchmarkDecrypt(b *testing.B) {
	b.ReportAllocs()
	peaks, sched, arr, err := experiments.DecryptionWorkload(2016)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Decrypt(peaks, arr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig05DesignComparison(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DesignComparison(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRepeatability(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Repeatability(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationNoiseRobustness(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NoiseRobustness(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSchemeComparison(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SchemeComparison(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAcquisition8 builds one deterministic 8-carrier capture for the
// cloud-pipeline benchmarks.
func benchAcquisition8(b *testing.B, durationS float64) lockin.Acquisition {
	b.Helper()
	s := sensor.NewDefault()
	s.Loss = microfluidic.LossModel{Disabled: true}
	sample := microfluidic.NewSample(10, map[microfluidic.Type]float64{
		microfluidic.TypeBloodCell: 300,
	})
	res, err := s.Acquire(sensor.AcquireConfig{Sample: sample, DurationS: durationS}, drbg.NewFromSeed(2016))
	if err != nil {
		b.Fatal(err)
	}
	if len(res.Acquisition.Traces) != 8 {
		b.Fatalf("expected 8 carriers, got %d", len(res.Acquisition.Traces))
	}
	return res.Acquisition
}

// BenchmarkCloudAnalyze compares the serial §VI-C pipeline against the
// parallel one on the same 8-carrier acquisition. On a 4+ core machine the
// parallel variant should clear a 1.5× speedup (per-carrier detrending is
// embarrassingly parallel); outputs are bitwise identical either way.
func BenchmarkCloudAnalyze(b *testing.B) {
	acq := benchAcquisition8(b, 300)
	var sampleBytes int64
	for _, tr := range acq.Traces {
		sampleBytes += int64(len(tr.Samples)) * 8
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // 0 → GOMAXPROCS
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(sampleBytes)
			cfg := cloud.DefaultAnalysisConfig()
			cfg.Workers = bc.workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				report, err := cloud.Analyze(acq, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if report.PeakCount == 0 {
					b.Fatal("no peaks")
				}
			}
		})
	}
}

// BenchmarkDetrendWorkers isolates the piecewise detrend, the pipeline's
// dominant cost, across worker-pool sizes on one long carrier trace.
func BenchmarkDetrendWorkers(b *testing.B) {
	acq := benchAcquisition8(b, 300)
	tr := acq.Traces[0]
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(tr.Samples)) * 8)
			for i := 0; i < b.N; i++ {
				if _, err := sigproc.DetrendWorkers(tr, sigproc.DefaultDetrendConfig(), workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
